(* Tests for the topology library: graph core, generators, the
   Internet-like AS graph generator and serialization. *)

(* --- Graph --- *)

let test_graph_basic () =
  let g = Topo.Graph.create ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check int) "nodes" 4 (Topo.Graph.n_nodes g);
  Alcotest.(check int) "edges" 3 (Topo.Graph.n_edges g);
  Alcotest.(check (list int)) "neighbors of 1" [ 0; 2 ]
    (Topo.Graph.neighbors g 1);
  Alcotest.(check int) "degree of 0" 1 (Topo.Graph.degree g 0);
  Alcotest.(check bool) "has edge" true (Topo.Graph.has_edge g 2 1);
  Alcotest.(check bool) "no edge" false (Topo.Graph.has_edge g 0 3)

let test_graph_rejects_self_loop () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Topo.Graph.create ~n:2 ~edges:[ (1, 1) ]);
       false
     with Invalid_argument _ -> true)

let test_graph_rejects_duplicate () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Topo.Graph.create ~n:3 ~edges:[ (0, 1); (1, 0) ]);
       false
     with Invalid_argument _ -> true)

let test_graph_rejects_out_of_range () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Topo.Graph.create ~n:2 ~edges:[ (0, 2) ]);
       false
     with Invalid_argument _ -> true)

let test_graph_edges_sorted () =
  let g = Topo.Graph.create ~n:4 ~edges:[ (3, 2); (1, 0); (2, 0) ] in
  Alcotest.(check (list (pair int int)))
    "canonical" [ (0, 1); (0, 2); (2, 3) ] (Topo.Graph.edges g)

let test_graph_connectivity () =
  let connected = Topo.Graph.create ~n:3 ~edges:[ (0, 1); (1, 2) ] in
  let disconnected = Topo.Graph.create ~n:3 ~edges:[ (0, 1) ] in
  Alcotest.(check bool) "connected" true (Topo.Graph.is_connected connected);
  Alcotest.(check bool) "disconnected" false
    (Topo.Graph.is_connected disconnected);
  Alcotest.(check bool) "empty is connected" true
    (Topo.Graph.is_connected (Topo.Graph.create ~n:0 ~edges:[]))

let test_graph_bfs () =
  let g = Topo.Graph.create ~n:5 ~edges:[ (0, 1); (1, 2); (2, 3) ] in
  let d = Topo.Graph.bfs_distances g ~from:0 in
  Alcotest.(check int) "d(0)" 0 d.(0);
  Alcotest.(check int) "d(3)" 3 d.(3);
  Alcotest.(check bool) "unreachable" true (d.(4) = max_int)

let test_graph_remove_edge () =
  let g = Topo.Graph.create ~n:3 ~edges:[ (0, 1); (1, 2); (0, 2) ] in
  let g' = Topo.Graph.remove_edge g 0 1 in
  Alcotest.(check bool) "edge gone" false (Topo.Graph.has_edge g' 0 1);
  Alcotest.(check int) "others kept" 2 (Topo.Graph.n_edges g');
  Alcotest.(check bool) "original intact" true (Topo.Graph.has_edge g 0 1);
  Alcotest.(check bool) "raises on absent" true
    (try
       ignore (Topo.Graph.remove_edge g' 0 1);
       false
     with Invalid_argument _ -> true)

let test_graph_min_degree_nodes () =
  let g = Topo.Graph.create ~n:4 ~edges:[ (0, 1); (0, 2); (0, 3); (1, 2) ] in
  Alcotest.(check (list int)) "stubs" [ 3 ] (Topo.Graph.min_degree_nodes g)

(* --- Generators --- *)

let test_clique () =
  let g = Topo.Generators.clique 5 in
  Alcotest.(check int) "nodes" 5 (Topo.Graph.n_nodes g);
  Alcotest.(check int) "edges" 10 (Topo.Graph.n_edges g);
  List.iter
    (fun v -> Alcotest.(check int) "degree" 4 (Topo.Graph.degree g v))
    (Topo.Graph.nodes g)

let test_chain () =
  let g = Topo.Generators.chain 4 in
  Alcotest.(check int) "edges" 3 (Topo.Graph.n_edges g);
  Alcotest.(check int) "end degree" 1 (Topo.Graph.degree g 0);
  Alcotest.(check int) "middle degree" 2 (Topo.Graph.degree g 1)

let test_ring () =
  let g = Topo.Generators.ring 5 in
  Alcotest.(check int) "edges" 5 (Topo.Graph.n_edges g);
  List.iter
    (fun v -> Alcotest.(check int) "degree 2" 2 (Topo.Graph.degree g v))
    (Topo.Graph.nodes g)

let test_star () =
  let g = Topo.Generators.star 6 in
  Alcotest.(check int) "hub degree" 5 (Topo.Graph.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (Topo.Graph.degree g 3)

let test_b_clique_structure () =
  (* paper Fig. 3b: chain 0..n-1, clique n..2n-1, plus links (0,n) and
     (n-1, 2n-1) *)
  let n = 4 in
  let g = Topo.Generators.b_clique n in
  Alcotest.(check int) "nodes" (2 * n) (Topo.Graph.n_nodes g);
  Alcotest.(check bool) "chain edge" true (Topo.Graph.has_edge g 1 2);
  Alcotest.(check bool) "clique edge" true (Topo.Graph.has_edge g 4 7);
  Alcotest.(check bool) "destination's core link" true
    (Topo.Graph.has_edge g 0 n);
  Alcotest.(check bool) "chain-to-core link" true
    (Topo.Graph.has_edge g (n - 1) ((2 * n) - 1));
  (* chain chord absent *)
  Alcotest.(check bool) "no chord" false (Topo.Graph.has_edge g 0 2);
  Alcotest.(check int) "edge count"
    ((n - 1) + (n * (n - 1) / 2) + 2)
    (Topo.Graph.n_edges g);
  Alcotest.(check bool) "connected" true (Topo.Graph.is_connected g)

let test_b_clique_backup_path_exists () =
  let n = 5 in
  let g = Topo.Generators.b_clique n in
  let without = Topo.Graph.remove_edge g 0 n in
  Alcotest.(check bool) "still connected after T_long failure" true
    (Topo.Graph.is_connected without);
  let d = Topo.Graph.bfs_distances without ~from:0 in
  (* backup path to core node n runs down the whole chain (n-1 hops),
     across to the far clique node, and one clique hop: n+1 total *)
  Alcotest.(check int) "long backup" (n + 1) d.(n)

let test_balanced_tree () =
  let g = Topo.Generators.balanced_tree ~depth:2 ~fanout:3 in
  Alcotest.(check int) "nodes" 13 (Topo.Graph.n_nodes g);
  Alcotest.(check int) "edges" 12 (Topo.Graph.n_edges g);
  Alcotest.(check bool) "connected" true (Topo.Graph.is_connected g)

let test_grid () =
  let g = Topo.Generators.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "nodes" 12 (Topo.Graph.n_nodes g);
  Alcotest.(check int) "edges" 17 (Topo.Graph.n_edges g);
  Alcotest.(check int) "corner degree" 2 (Topo.Graph.degree g 0)

let test_barbell () =
  let g = Topo.Generators.barbell 3 in
  Alcotest.(check int) "nodes" 6 (Topo.Graph.n_nodes g);
  Alcotest.(check bool) "bridge" true (Topo.Graph.has_edge g 2 3);
  Alcotest.(check bool) "connected" true (Topo.Graph.is_connected g)

let test_generators_reject_bad_sizes () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "clique 0" true (raises (fun () -> Topo.Generators.clique 0));
  Alcotest.(check bool) "ring 2" true (raises (fun () -> Topo.Generators.ring 2));
  Alcotest.(check bool) "star 1" true (raises (fun () -> Topo.Generators.star 1));
  Alcotest.(check bool) "b_clique 1" true
    (raises (fun () -> Topo.Generators.b_clique 1));
  Alcotest.(check bool) "grid 0" true
    (raises (fun () -> Topo.Generators.grid ~rows:0 ~cols:3))

(* --- Internet generator --- *)

let test_internet_connected_and_sized () =
  List.iter
    (fun n ->
      let g = Topo.Internet.generate ~seed:1 n in
      Alcotest.(check int) "nodes" n (Topo.Graph.n_nodes g);
      Alcotest.(check bool) "connected" true (Topo.Graph.is_connected g))
    [ 29; 48; 75; 110 ]

let test_internet_deterministic () =
  let a = Topo.Internet.generate ~seed:42 50 in
  let b = Topo.Internet.generate ~seed:42 50 in
  Alcotest.(check (list (pair int int)))
    "same seed, same graph" (Topo.Graph.edges a) (Topo.Graph.edges b)

let test_internet_seed_variation () =
  let a = Topo.Internet.generate ~seed:1 50 in
  let b = Topo.Internet.generate ~seed:2 50 in
  Alcotest.(check bool) "seeds differ" true
    (Topo.Graph.edges a <> Topo.Graph.edges b)

let test_internet_heavy_tail () =
  let g = Topo.Internet.generate ~seed:1 110 in
  let stats = Topo.Internet.degree_stats g in
  (* heavy tail: the max degree is far above the median *)
  Alcotest.(check bool) "hub exists" true (stats.max >= 3. *. stats.median);
  Alcotest.(check bool) "stubs exist" true (stats.min <= 2.)

let test_internet_stub_nodes () =
  let g = Topo.Internet.generate ~seed:1 50 in
  let stubs = Topo.Internet.stub_nodes g in
  Alcotest.(check bool) "nonempty" true (stubs <> []);
  let dmin =
    List.fold_left
      (fun acc v -> Stdlib.min acc (Topo.Graph.degree g v))
      max_int (Topo.Graph.nodes g)
  in
  List.iter
    (fun v -> Alcotest.(check int) "minimal degree" dmin (Topo.Graph.degree g v))
    stubs

let test_internet_rejects_small () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Topo.Internet.generate ~seed:1 2);
       false
     with Invalid_argument _ -> true)

(* --- Graph_metrics --- *)

let test_metrics_clique () =
  let m = Topo.Graph_metrics.compute (Topo.Generators.clique 5) in
  Alcotest.(check int) "diameter" 1 m.diameter;
  Alcotest.(check (float 1e-9)) "mean path" 1. m.mean_path_length;
  Alcotest.(check (float 1e-9)) "clustering" 1. m.clustering;
  Alcotest.(check (float 1e-9)) "mean degree" 4. m.mean_degree;
  Alcotest.(check (list (pair int int))) "histogram" [ (4, 5) ]
    m.degree_histogram

let test_metrics_chain () =
  let m = Topo.Graph_metrics.compute (Topo.Generators.chain 5) in
  Alcotest.(check int) "diameter" 4 m.diameter;
  Alcotest.(check (float 1e-9)) "no triangles" 0. m.clustering;
  Alcotest.(check int) "min degree" 1 m.min_degree;
  Alcotest.(check int) "max degree" 2 m.max_degree;
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 2); (2, 3) ]
    m.degree_histogram

let test_metrics_star_mean_path () =
  (* star-4: hub at distance 1 from all leaves, leaves at 2 from each
     other; ordered pairs: 6 at distance 1, 6 at distance 2 *)
  let m = Topo.Graph_metrics.compute (Topo.Generators.star 4) in
  Alcotest.(check (float 1e-9)) "mean path" 1.5 m.mean_path_length;
  Alcotest.(check int) "diameter" 2 m.diameter

let test_metrics_rejects_disconnected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Topo.Graph_metrics.compute (Topo.Graph.create ~n:3 ~edges:[ (0, 1) ]));
       false
     with Invalid_argument _ -> true)

let test_metrics_internet_documented_shape () =
  (* the properties EXPERIMENTS.md cites for the substitution *)
  let m = Topo.Graph_metrics.compute (Topo.Internet.generate ~seed:1 110) in
  Alcotest.(check int) "stubs exist" 1 m.min_degree;
  Alcotest.(check bool) "heavy tail" true
    (float_of_int m.max_degree > 3. *. m.mean_degree);
  Alcotest.(check bool) "small world" true (m.diameter <= 12)

(* --- Topo_io --- *)

let test_io_roundtrip () =
  let g = Topo.Generators.b_clique 4 in
  let g' = Topo.Topo_io.of_edge_list (Topo.Topo_io.to_edge_list g) in
  Alcotest.(check (list (pair int int)))
    "roundtrip" (Topo.Graph.edges g) (Topo.Graph.edges g')

let test_io_comments_and_blanks () =
  let text = "# AS graph\nn 3\n\n0 1\n# a comment\n1 2\n" in
  let g = Topo.Topo_io.of_edge_list text in
  Alcotest.(check int) "edges" 2 (Topo.Graph.n_edges g)

let test_io_rejects_garbage () =
  let raises text =
    try
      ignore (Topo.Topo_io.of_edge_list text);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty" true (raises "");
  Alcotest.(check bool) "no header" true (raises "0 1\n");
  Alcotest.(check bool) "bad edge" true (raises "n 2\nzero one\n")

let test_io_dot_contains_edges () =
  let g = Topo.Generators.chain 3 in
  let dot = Topo.Topo_io.to_dot g in
  Alcotest.(check bool) "has edge line" true
    (let contains ~needle hay =
       let nl = String.length needle and hl = String.length hay in
       let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
       scan 0
     in
     contains ~needle:"0 -- 1;" dot && contains ~needle:"1 -- 2;" dot)

(* --- Random_graphs --- *)

let test_waxman_connected_and_deterministic () =
  let a = Topo.Random_graphs.waxman ~seed:5 40 in
  let b = Topo.Random_graphs.waxman ~seed:5 40 in
  Alcotest.(check bool) "connected" true (Topo.Graph.is_connected a);
  Alcotest.(check (list (pair int int)))
    "deterministic" (Topo.Graph.edges a) (Topo.Graph.edges b);
  let c = Topo.Random_graphs.waxman ~seed:6 40 in
  Alcotest.(check bool) "seed varies" true
    (Topo.Graph.edges a <> Topo.Graph.edges c)

let test_waxman_density_grows_with_alpha () =
  let sparse = Topo.Random_graphs.waxman ~alpha:0.1 ~seed:1 60 in
  let dense = Topo.Random_graphs.waxman ~alpha:0.9 ~seed:1 60 in
  Alcotest.(check bool) "alpha controls density" true
    (Topo.Graph.n_edges dense > Topo.Graph.n_edges sparse)

let test_waxman_validation () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "n" true
    (raises (fun () -> Topo.Random_graphs.waxman ~seed:1 1));
  Alcotest.(check bool) "alpha" true
    (raises (fun () -> Topo.Random_graphs.waxman ~alpha:0. ~seed:1 5));
  Alcotest.(check bool) "beta" true
    (raises (fun () -> Topo.Random_graphs.waxman ~beta:1.5 ~seed:1 5))

let test_glp_connected_heavy_tail () =
  let g = Topo.Random_graphs.glp ~m:2 ~seed:3 80 in
  Alcotest.(check bool) "connected" true (Topo.Graph.is_connected g);
  let m = Topo.Graph_metrics.compute g in
  Alcotest.(check bool) "heavy tail" true
    (float_of_int m.max_degree > 2.5 *. m.mean_degree)

let test_glp_m_controls_density () =
  let thin = Topo.Random_graphs.glp ~m:1 ~seed:1 50 in
  let thick = Topo.Random_graphs.glp ~m:3 ~seed:1 50 in
  Alcotest.(check bool) "density" true
    (Topo.Graph.n_edges thick > Topo.Graph.n_edges thin)

let test_glp_validation () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "m" true
    (raises (fun () -> Topo.Random_graphs.glp ~m:0 ~seed:1 5));
  Alcotest.(check bool) "beta" true
    (raises (fun () -> Topo.Random_graphs.glp ~beta:1. ~seed:1 5))

let prop_random_graphs_connected =
  QCheck.Test.make ~name:"waxman and glp always connect" ~count:40
    QCheck.(pair small_nat (make (QCheck.Gen.int_range 2 60)))
    (fun (seed, n) ->
      Topo.Graph.is_connected (Topo.Random_graphs.waxman ~seed n)
      && Topo.Graph.is_connected (Topo.Random_graphs.glp ~seed n))

(* --- As_rel --- *)

let sample_rel_file =
  "# CAIDA serial-1 sample\n\
   100|200|-1\n\
   100|300|-1\n\
   200|300|0\n\
   200|400|-1\n"

let test_as_rel_parses () =
  let t = Topo.As_rel.parse sample_rel_file in
  let g = Topo.As_rel.graph t in
  Alcotest.(check int) "nodes" 4 (Topo.Graph.n_nodes g);
  Alcotest.(check int) "edges" 4 (Topo.Graph.n_edges g);
  Alcotest.(check bool) "asn mapping" true
    (Topo.As_rel.node_of_asn t 400 <> None);
  Alcotest.(check bool) "unknown asn" true (Topo.As_rel.node_of_asn t 999 = None)

let test_as_rel_relationships () =
  let t = Topo.As_rel.parse sample_rel_file in
  let node asn = Option.get (Topo.As_rel.node_of_asn t asn) in
  (* 100 is 200's provider *)
  Alcotest.(check bool) "provider view" true
    (Topo.As_rel.relationship t (node 200) (node 100) = `Provider);
  Alcotest.(check bool) "customer view" true
    (Topo.As_rel.relationship t (node 100) (node 200) = `Customer);
  Alcotest.(check bool) "peer view" true
    (Topo.As_rel.relationship t (node 200) (node 300) = `Peer);
  Alcotest.(check bool) "asn roundtrip" true
    (Topo.As_rel.asn_of_node t (node 400) = 400)

let test_as_rel_roundtrip () =
  let t = Topo.As_rel.parse sample_rel_file in
  let t' = Topo.As_rel.parse (Topo.As_rel.to_string t) in
  Alcotest.(check int) "same edges"
    (Topo.Graph.n_edges (Topo.As_rel.graph t))
    (Topo.Graph.n_edges (Topo.As_rel.graph t'));
  (* relationships survive the roundtrip *)
  let node tt asn = Option.get (Topo.As_rel.node_of_asn tt asn) in
  Alcotest.(check bool) "rel survives" true
    (Topo.As_rel.relationship t (node t 100) (node t 200)
    = Topo.As_rel.relationship t' (node t' 100) (node t' 200))

let test_as_rel_rejects_garbage () =
  let raises text =
    try
      ignore (Topo.As_rel.parse text);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty" true (raises "# nothing\n");
  Alcotest.(check bool) "bad rel code" true (raises "1|2|7\n");
  Alcotest.(check bool) "self rel" true (raises "5|5|0\n");
  Alcotest.(check bool) "duplicate" true (raises "1|2|-1\n2|1|0\n");
  Alcotest.(check bool) "malformed" true (raises "1,2,0\n")

(* --- properties --- *)

let sized_gen lo hi = QCheck.Gen.int_range lo hi

let prop_clique_degrees =
  QCheck.Test.make ~name:"clique: every node has degree n-1" ~count:30
    (QCheck.make (sized_gen 1 30)) (fun n ->
      let g = Topo.Generators.clique n in
      List.for_all (fun v -> Topo.Graph.degree g v = n - 1) (Topo.Graph.nodes g))

let prop_b_clique_connected =
  QCheck.Test.make ~name:"b_clique is connected and sized 2n" ~count:30
    (QCheck.make (sized_gen 2 20)) (fun n ->
      let g = Topo.Generators.b_clique n in
      Topo.Graph.n_nodes g = 2 * n && Topo.Graph.is_connected g)

let prop_internet_connected =
  QCheck.Test.make ~name:"internet generator always connects" ~count:30
    QCheck.(pair (make (sized_gen 3 120)) small_nat)
    (fun (n, seed) ->
      Topo.Graph.is_connected (Topo.Internet.generate ~seed n))

let prop_io_roundtrip =
  QCheck.Test.make ~name:"edge-list roundtrip preserves the graph" ~count:30
    QCheck.(pair (make (sized_gen 3 60)) small_nat)
    (fun (n, seed) ->
      let g = Topo.Internet.generate ~seed n in
      let g' = Topo.Topo_io.of_edge_list (Topo.Topo_io.to_edge_list g) in
      Topo.Graph.edges g = Topo.Graph.edges g'
      && Topo.Graph.n_nodes g = Topo.Graph.n_nodes g')

let prop_degree_sum =
  QCheck.Test.make ~name:"handshake lemma: degree sum = 2m" ~count:30
    QCheck.(pair (make (sized_gen 3 80)) small_nat)
    (fun (n, seed) ->
      let g = Topo.Internet.generate ~seed n in
      let degree_sum =
        List.fold_left (fun acc v -> acc + Topo.Graph.degree g v) 0
          (Topo.Graph.nodes g)
      in
      degree_sum = 2 * Topo.Graph.n_edges g)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "topo"
    [
      ( "graph",
        [
          tc "basics" test_graph_basic;
          tc "rejects self-loop" test_graph_rejects_self_loop;
          tc "rejects duplicate edge" test_graph_rejects_duplicate;
          tc "rejects out-of-range" test_graph_rejects_out_of_range;
          tc "edges canonical order" test_graph_edges_sorted;
          tc "connectivity" test_graph_connectivity;
          tc "bfs distances" test_graph_bfs;
          tc "remove edge" test_graph_remove_edge;
          tc "min-degree nodes" test_graph_min_degree_nodes;
        ] );
      ( "generators",
        [
          tc "clique" test_clique;
          tc "chain" test_chain;
          tc "ring" test_ring;
          tc "star" test_star;
          tc "b-clique structure (paper Fig 3b)" test_b_clique_structure;
          tc "b-clique backup path" test_b_clique_backup_path_exists;
          tc "balanced tree" test_balanced_tree;
          tc "grid" test_grid;
          tc "barbell" test_barbell;
          tc "size validation" test_generators_reject_bad_sizes;
        ] );
      ( "internet",
        [
          tc "paper sizes connect" test_internet_connected_and_sized;
          tc "deterministic per seed" test_internet_deterministic;
          tc "varies with seed" test_internet_seed_variation;
          tc "heavy-tailed degrees" test_internet_heavy_tail;
          tc "stub nodes are minimal degree" test_internet_stub_nodes;
          tc "rejects tiny n" test_internet_rejects_small;
        ] );
      ( "graph-metrics",
        [
          tc "clique" test_metrics_clique;
          tc "chain" test_metrics_chain;
          tc "star mean path" test_metrics_star_mean_path;
          tc "rejects disconnected" test_metrics_rejects_disconnected;
          tc "internet substitution shape" test_metrics_internet_documented_shape;
        ] );
      ( "io",
        [
          tc "roundtrip" test_io_roundtrip;
          tc "comments and blanks" test_io_comments_and_blanks;
          tc "rejects garbage" test_io_rejects_garbage;
          tc "dot rendering" test_io_dot_contains_edges;
        ] );
      ( "random-graphs",
        [
          tc "waxman connected and deterministic"
            test_waxman_connected_and_deterministic;
          tc "waxman density grows with alpha"
            test_waxman_density_grows_with_alpha;
          tc "waxman validation" test_waxman_validation;
          tc "glp connected with heavy tail" test_glp_connected_heavy_tail;
          tc "glp m controls density" test_glp_m_controls_density;
          tc "glp validation" test_glp_validation;
          QCheck_alcotest.to_alcotest prop_random_graphs_connected;
        ] );
      ( "as-rel",
        [
          tc "parses the serial-1 format" test_as_rel_parses;
          tc "relationship views" test_as_rel_relationships;
          tc "roundtrip" test_as_rel_roundtrip;
          tc "rejects garbage" test_as_rel_rejects_garbage;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_clique_degrees;
            prop_b_clique_connected;
            prop_internet_connected;
            prop_io_roundtrip;
            prop_degree_sum;
          ] );
    ]
