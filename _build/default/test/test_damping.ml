(* Tests for route-flap damping (RFC 2439): the figure-of-merit state
   machine, speaker-level suppression, and end-to-end behaviour on a
   flapping link. *)

let params =
  {
    Bgp.Damping.default_params with
    half_life = 100.;
    suppress_threshold = 2.0;
    reuse_threshold = 0.75;
  }

(* --- state machine --- *)

let test_penalty_accumulates_and_decays () =
  let d = Bgp.Damping.create params in
  Alcotest.(check (float 1e-9)) "starts clean" 0. (Bgp.Damping.penalty d ~now:0.);
  Bgp.Damping.on_withdrawal d ~now:0.;
  Alcotest.(check (float 1e-9)) "withdrawal penalty" 1.
    (Bgp.Damping.penalty d ~now:0.);
  (* one half-life later the penalty has halved *)
  Alcotest.(check (float 1e-9)) "decay" 0.5 (Bgp.Damping.penalty d ~now:100.)

let test_suppression_hysteresis () =
  let d = Bgp.Damping.create params in
  Bgp.Damping.on_withdrawal d ~now:0.;
  Bgp.Damping.on_update d ~now:0.;
  Alcotest.(check bool) "1.5 below suppress" false
    (Bgp.Damping.suppressed d ~now:0.);
  Bgp.Damping.on_withdrawal d ~now:0.;
  (* 2.5 > 2.0: suppressed *)
  Alcotest.(check bool) "suppressed" true (Bgp.Damping.suppressed d ~now:0.);
  (* decays below suppress (2.0) but above reuse (0.75): still out *)
  Alcotest.(check bool) "hysteresis holds" true
    (Bgp.Damping.suppressed d ~now:100.);
  (* below reuse: back in *)
  Alcotest.(check bool) "reused" false (Bgp.Damping.suppressed d ~now:300.)

let test_reuse_at_prediction () =
  let d = Bgp.Damping.create params in
  for _ = 1 to 3 do
    Bgp.Damping.on_withdrawal d ~now:0.
  done;
  (* penalty 3.0; crosses 0.75 after 2 half-lives = 200 s *)
  (match Bgp.Damping.reuse_at d ~now:0. with
  | Some t -> Alcotest.(check (float 1e-6)) "reuse time" 200. t
  | None -> Alcotest.fail "expected suppression");
  (* the prediction is self-consistent *)
  Alcotest.(check bool) "just before" true
    (Bgp.Damping.suppressed d ~now:199.9);
  Alcotest.(check bool) "just after" false
    (Bgp.Damping.suppressed d ~now:200.1)

let test_penalty_ceiling () =
  let d = Bgp.Damping.create params in
  for _ = 1 to 100 do
    Bgp.Damping.on_withdrawal d ~now:0.
  done;
  Alcotest.(check (float 1e-9)) "capped" params.max_penalty
    (Bgp.Damping.penalty d ~now:0.)

let test_no_suppression_when_quiet () =
  let d = Bgp.Damping.create params in
  Bgp.Damping.on_update d ~now:0.;
  Alcotest.(check bool) "single update harmless" false
    (Bgp.Damping.suppressed d ~now:0.);
  Alcotest.(check bool) "no reuse time" true
    (Bgp.Damping.reuse_at d ~now:0. = None)

let test_params_validation () =
  let raises p =
    try
      Bgp.Damping.validate p;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "half life" true (raises { params with half_life = 0. });
  Alcotest.(check bool) "thresholds" true
    (raises { params with reuse_threshold = 3. });
  Alcotest.(check bool) "ceiling" true (raises { params with max_penalty = 1. })

let prop_decay_monotone =
  QCheck.Test.make ~name:"penalty decays monotonically" ~count:100
    QCheck.(pair (int_range 1 10) (pair (float_range 1. 500.) (float_range 1. 500.)))
    (fun (hits, (t1, t2)) ->
      let d = Bgp.Damping.create params in
      for _ = 1 to hits do
        Bgp.Damping.on_withdrawal d ~now:0.
      done;
      let early = Float.min t1 t2 and late = Float.max t1 t2 in
      Bgp.Damping.penalty d ~now:late
      <= Bgp.Damping.penalty d ~now:early +. 1e-9)

(* --- speaker integration --- *)

let path = Bgp.As_path.of_list

let prefix0 = Bgp.Prefix.make ~origin:0 ()

let speaker_with_damping () =
  let engine = Dessim.Engine.create () in
  let outbox = Queue.create () in
  let config =
    { Bgp.Config.default with damping = Some params; mrai = 0. }
  in
  let speaker =
    Bgp.Speaker.create ~engine ~config
      ~rng:(Dessim.Rng.create ~seed:1)
      ~node:5 ~peers:[ 4; 6 ]
      ~emit:(fun ~peer msg -> Queue.add (peer, msg) outbox)
      ~on_next_hop_change:(fun ~prefix:_ ~next_hop:_ -> ())
      ()
  in
  (engine, speaker)

let flap engine speaker times =
  for _ = 1 to times do
    Bgp.Speaker.handle_msg speaker ~from:4
      (Bgp.Msg.Announce { prefix = prefix0; path = path [ 4; 0 ] });
    Bgp.Speaker.handle_msg speaker ~from:4 (Bgp.Msg.Withdraw { prefix = prefix0 });
    ignore engine
  done

let test_speaker_suppresses_flapping_peer () =
  let engine, speaker = speaker_with_damping () in
  (* a stable alternative exists via 6 *)
  Bgp.Speaker.handle_msg speaker ~from:6
    (Bgp.Msg.Announce { prefix = prefix0; path = path [ 6; 9; 0 ] });
  flap engine speaker 2;
  (* two withdrawals + two updates = 3.0 penalty: suppressed *)
  Alcotest.(check (list int)) "peer 4 suppressed" [ 4 ]
    (Bgp.Speaker.suppressed_peers speaker prefix0);
  (* 4 re-announces its (shorter) path, but damping hides it *)
  Bgp.Speaker.handle_msg speaker ~from:4
    (Bgp.Msg.Announce { prefix = prefix0; path = path [ 4; 0 ] });
  Alcotest.(check bool) "stable path wins despite being longer" true
    (Bgp.Speaker.next_hop speaker prefix0 = Some 6)

let test_speaker_reuses_after_decay () =
  let engine, speaker = speaker_with_damping () in
  Bgp.Speaker.handle_msg speaker ~from:6
    (Bgp.Msg.Announce { prefix = prefix0; path = path [ 6; 9; 0 ] });
  flap engine speaker 2;
  Bgp.Speaker.handle_msg speaker ~from:4
    (Bgp.Msg.Announce { prefix = prefix0; path = path [ 4; 0 ] });
  Alcotest.(check bool) "suppressed now" true
    (Bgp.Speaker.next_hop speaker prefix0 = Some 6);
  (* the reuse timer fires once the penalty decays; the shorter path
     then takes over with no further messages *)
  Dessim.Engine.run engine;
  Alcotest.(check (list int)) "no longer suppressed" []
    (Bgp.Speaker.suppressed_peers speaker prefix0);
  Alcotest.(check bool) "short path reinstated" true
    (Bgp.Speaker.next_hop speaker prefix0 = Some 4)

let test_speaker_without_damping_never_suppresses () =
  let engine = Dessim.Engine.create () in
  let speaker =
    Bgp.Speaker.create ~engine ~config:Bgp.Config.default
      ~rng:(Dessim.Rng.create ~seed:1)
      ~node:5 ~peers:[ 4 ]
      ~emit:(fun ~peer:_ _ -> ())
      ~on_next_hop_change:(fun ~prefix:_ ~next_hop:_ -> ())
      ()
  in
  flap engine speaker 10;
  Alcotest.(check (list int)) "nothing suppressed" []
    (Bgp.Speaker.suppressed_peers speaker prefix0)

(* --- end to end: a flapping link under damping --- *)

let test_damping_on_tshort () =
  (* a T_short flap on the b-clique core link: with damping, node n's
     direct route to the destination accrues penalty at its neighbors;
     without, the network re-converges directly *)
  let n = 4 in
  let graph = Topo.Generators.b_clique n in
  let event = Bgp.Routing_sim.Tshort { a = 0; b = n; down_for = 10. } in
  let damped_config =
    {
      Bgp.Config.default with
      damping =
        Some
          {
            Bgp.Damping.default_params with
            half_life = 60.;
            suppress_threshold = 1.4;
          };
    }
  in
  let plain = Bgp.Routing_sim.run ~graph ~origin:0 ~event ~seed:1 () in
  let damped =
    Bgp.Routing_sim.run ~config:damped_config ~graph ~origin:0 ~event ~seed:1 ()
  in
  Alcotest.(check bool) "both converge" true (plain.converged && damped.converged);
  (* damping delays the return to the direct path: the network-wide
     quiet time is at least as late as without damping *)
  Alcotest.(check bool) "damping never speeds the flap up" true
    (Bgp.Routing_sim.convergence_time damped
    >= Bgp.Routing_sim.convergence_time plain -. 1e-6)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "damping"
    [
      ( "figure-of-merit",
        [
          tc "penalty accumulates and decays" test_penalty_accumulates_and_decays;
          tc "suppression hysteresis" test_suppression_hysteresis;
          tc "reuse time prediction" test_reuse_at_prediction;
          tc "penalty ceiling" test_penalty_ceiling;
          tc "quiet routes never suppressed" test_no_suppression_when_quiet;
          tc "params validation" test_params_validation;
          QCheck_alcotest.to_alcotest prop_decay_monotone;
        ] );
      ( "speaker",
        [
          tc "suppresses a flapping peer" test_speaker_suppresses_flapping_peer;
          tc "reuses after decay" test_speaker_reuses_after_decay;
          tc "no damping, no suppression"
            test_speaker_without_damping_never_suppresses;
        ] );
      ("end-to-end", [ tc "T_short under damping" test_damping_on_tshort ]);
    ]
