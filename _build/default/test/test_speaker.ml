(* Unit tests for the BGP speaker: decision process, path-based poison
   reverse, adj-rib-out duplicate suppression, MRAI interaction, the
   four enhancements, and session teardown.

   The harness wires a speaker to a recording emit callback; tests
   deliver messages by calling [handle_msg] directly, so every protocol
   step is observable and deterministic. *)

let path = Bgp.As_path.of_list

let prefix0 = Bgp.Prefix.make ~origin:0 ()

type harness = {
  engine : Dessim.Engine.t;
  speaker : Bgp.Speaker.t;
  outbox : (int * Bgp.Msg.t) Queue.t;  (* (peer, msg) in emission order *)
  nh_changes : (int option) Queue.t;
}

let make ?(config = { Bgp.Config.default with mrai_jitter_min = 1. }) ~node
    ~peers () =
  let engine = Dessim.Engine.create () in
  let outbox = Queue.create () in
  let nh_changes = Queue.create () in
  let speaker =
    Bgp.Speaker.create ~engine ~config
      ~rng:(Dessim.Rng.create ~seed:1)
      ~node ~peers
      ~emit:(fun ~peer msg -> Queue.add (peer, msg) outbox)
      ~on_next_hop_change:(fun ~prefix:_ ~next_hop ->
        Queue.add next_hop nh_changes)
      ()
  in
  { engine; speaker; outbox; nh_changes }

let drain q = List.of_seq (Queue.to_seq q) |> fun l -> Queue.clear q; l

let announce h ~from l =
  Bgp.Speaker.handle_msg h.speaker ~from
    (Bgp.Msg.Announce { prefix = prefix0; path = path l })

let withdraw h ~from =
  Bgp.Speaker.handle_msg h.speaker ~from (Bgp.Msg.Withdraw { prefix = prefix0 })

let msgs_equal = List.equal (fun (p1, m1) (p2, m2) -> p1 = p2 && m1 = m2)

let check_msgs what expected actual =
  if not (msgs_equal expected actual) then begin
    let render (peer, msg) =
      Format.asprintf "-> %d: %a" peer Bgp.Msg.pp msg
    in
    Alcotest.failf "%s:\nexpected: %s\nactual:   %s" what
      (String.concat "; " (List.map render expected))
      (String.concat "; " (List.map render actual))
  end

let ann peer l = (peer, Bgp.Msg.Announce { prefix = prefix0; path = path l })

let wd peer = (peer, Bgp.Msg.Withdraw { prefix = prefix0 })

(* --- origination and basic decision --- *)

let test_originate_announces_to_all () =
  let h = make ~node:0 ~peers:[ 1; 2; 3 ] () in
  Bgp.Speaker.originate h.speaker prefix0;
  check_msgs "origination" [ ann 1 [ 0 ]; ann 2 [ 0 ]; ann 3 [ 0 ] ]
    (drain h.outbox);
  Alcotest.(check bool) "local best" true
    (Bgp.Speaker.best h.speaker prefix0 = Some (None, Bgp.As_path.empty))

let test_adopts_and_propagates () =
  let h = make ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 0 ];
  Alcotest.(check bool) "next hop" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = Some 4);
  check_msgs "propagation" [ ann 4 [ 5; 4; 0 ]; ann 6 [ 5; 4; 0 ] ]
    (drain h.outbox);
  Alcotest.(check bool) "nh change recorded" true
    (drain h.nh_changes = [ Some 4 ])

let test_prefers_shorter_path () =
  let h = make ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:6 [ 6; 4; 0 ];
  announce h ~from:4 [ 4; 0 ];
  Alcotest.(check bool) "switched to shorter" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = Some 4)

let test_tie_break_lower_id () =
  let h = make ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:6 [ 6; 0 ];
  announce h ~from:4 [ 4; 0 ];
  Alcotest.(check bool) "lower peer id wins" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = Some 4)

let test_better_path_does_not_flap () =
  let h = make ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 0 ];
  ignore (drain h.outbox);
  ignore (drain h.nh_changes);
  (* a worse path from the other peer must not change anything *)
  announce h ~from:6 [ 6; 4; 0 ];
  check_msgs "no update for worse path" [] (drain h.outbox);
  Alcotest.(check bool) "no nh change" true (drain h.nh_changes = [])

(* --- poison reverse --- *)

let test_poison_reverse_discards () =
  let h = make ~node:4 ~peers:[ 5; 6 ] () in
  announce h ~from:6 [ 6; 4; 0 ];
  Alcotest.(check bool) "not adopted" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = None);
  Alcotest.(check (list (pair int string)))
    "not stored" []
    (List.map
       (fun (p, pa) -> (p, Bgp.As_path.to_string pa))
       (Bgp.Speaker.rib_in h.speaker prefix0))

let test_poisoned_update_is_implicit_withdraw () =
  let h = make ~node:4 ~peers:[ 5 ] () in
  announce h ~from:5 [ 5; 0 ];
  Alcotest.(check bool) "using 5" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = Some 5);
  ignore (drain h.outbox);
  (* 5 switches to a path through us: its entry must vanish *)
  announce h ~from:5 [ 5; 4; 0 ];
  Alcotest.(check bool) "route lost" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = None);
  check_msgs "withdrawal propagates" [ wd 5 ] (drain h.outbox)

(* --- withdrawals --- *)

let test_withdrawal_falls_back () =
  let h = make ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 0 ];
  announce h ~from:6 [ 6; 4; 0 ];
  ignore (drain h.outbox);
  withdraw h ~from:4;
  (* falls back to the (stale) longer path through 6 — the very
     mechanism behind the paper's transient loops *)
  Alcotest.(check bool) "fallback" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = Some 6)

let test_withdrawal_without_alternative () =
  let h = make ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 0 ];
  ignore (drain h.outbox);
  withdraw h ~from:4;
  Alcotest.(check bool) "no route" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = None);
  check_msgs "explicit withdrawals, sent immediately"
    [ wd 4; wd 6 ]
    (drain h.outbox)

let test_withdrawal_to_peer_without_state_suppressed () =
  let h = make ~node:5 ~peers:[ 4 ] () in
  (* nothing ever announced: a lost route must not generate a
     withdrawal *)
  announce h ~from:4 [ 4; 9; 0 ];
  ignore (drain h.outbox);
  withdraw h ~from:4;
  (* peer 4 got our announcement earlier, so exactly one withdrawal *)
  check_msgs "single withdrawal" [ wd 4 ] (drain h.outbox);
  withdraw h ~from:4;
  check_msgs "idempotent" [] (drain h.outbox)

(* --- duplicate suppression and MRAI --- *)

let test_duplicate_announcement_suppressed () =
  let h = make ~node:5 ~peers:[ 4 ] () in
  announce h ~from:4 [ 4; 0 ];
  ignore (drain h.outbox);
  (* the same path re-announced: best is unchanged, nothing emitted *)
  announce h ~from:4 [ 4; 0 ];
  check_msgs "suppressed" [] (drain h.outbox)

let test_mrai_delays_second_announcement () =
  let config = { Bgp.Config.default with mrai = 30.; mrai_jitter_min = 1. } in
  let h = make ~config ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 0 ];
  ignore (drain h.outbox);
  (* 4's path worsens; our best switches to a longer path via 4 *)
  announce h ~from:4 [ 4; 9; 0 ];
  (* the new announcement is pending behind the MRAI timer *)
  check_msgs "pending" [] (drain h.outbox);
  Dessim.Engine.run h.engine;
  check_msgs "released at expiry"
    [ ann 4 [ 5; 4; 9; 0 ]; ann 6 [ 5; 4; 9; 0 ] ]
    (drain h.outbox);
  (* the pending announcements went out exactly one MRAI after the
     first ones; the clock then advanced through the timers' final
     no-op expirations *)
  Alcotest.(check bool) "at least one MRAI passed" true
    (Dessim.Engine.now h.engine >= 30.)

(* --- SSLD --- *)

let test_ssld_sends_withdrawal_instead () =
  let config =
    Bgp.Config.of_enhancement Bgp.Enhancement.Ssld |> fun c ->
    { c with mrai_jitter_min = 1. }
  in
  let h = make ~config ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 0 ];
  (* the paper's Fig 1 situation: path (5 4 0) is doomed at 4; SSLD
     suppresses it there but announces normally to 6 *)
  check_msgs "ssld" [ ann 6 [ 5; 4; 0 ] ] (drain h.outbox);
  Alcotest.(check bool) "nothing advertised to 4" true
    (Bgp.Speaker.advertised_to h.speaker prefix0 ~peer:4 = None)

let test_ssld_withdraws_previous_advertisement () =
  let config =
    Bgp.Config.of_enhancement Bgp.Enhancement.Ssld |> fun c ->
    { c with mrai_jitter_min = 1. }
  in
  let h = make ~config ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:6 [ 6; 0 ];
  (* towards 6 itself, the (5 6 0) announcement is doomed and SSLD
     withholds it — and there is nothing to withdraw yet *)
  check_msgs "first: only peer 4 hears" [ ann 4 [ 5; 6; 0 ] ] (drain h.outbox);
  (* best switches to a path through 4: peer 4 must get an immediate
     withdrawal (not an MRAI-delayed poisoned announcement), while
     peer 6 — whose MRAI timer never started — hears the new path at
     once *)
  announce h ~from:4 [ 4; 0 ];
  check_msgs "ssld withdrawal plus fresh announcement"
    [ wd 4; ann 6 [ 5; 4; 0 ] ]
    (drain h.outbox)

(* --- WRATE --- *)

let test_wrate_delays_withdrawal () =
  let config =
    Bgp.Config.of_enhancement Bgp.Enhancement.Wrate |> fun c ->
    { c with mrai_jitter_min = 1. }
  in
  let h = make ~config ~node:5 ~peers:[ 4 ] () in
  announce h ~from:4 [ 4; 0 ];
  ignore (drain h.outbox);
  withdraw h ~from:4;
  (* without WRATE this withdrawal would be immediate *)
  check_msgs "withdrawal held" [] (drain h.outbox);
  Dessim.Engine.run h.engine;
  check_msgs "withdrawal after MRAI" [ wd 4 ] (drain h.outbox)

let test_wrate_announcement_supersedes_pending_withdrawal () =
  let config =
    Bgp.Config.of_enhancement Bgp.Enhancement.Wrate |> fun c ->
    { c with mrai_jitter_min = 1. }
  in
  let h = make ~config ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 0 ];
  ignore (drain h.outbox);
  withdraw h ~from:4;
  (* a new path arrives while the withdrawal is still pending *)
  announce h ~from:6 [ 6; 0 ];
  Dessim.Engine.run h.engine;
  (* peer 4 never sees the interim unreachability, only the new path *)
  let to_4 =
    List.filter (fun (p, _) -> p = 4) (drain h.outbox)
  in
  check_msgs "only the announcement" [ ann 4 [ 5; 6; 0 ] ] to_4

(* --- Assertion --- *)

let test_assertion_purges_on_withdrawal () =
  let config =
    Bgp.Config.of_enhancement Bgp.Enhancement.Assertion |> fun c ->
    { c with mrai_jitter_min = 1. }
  in
  (* the paper's Fig 1(b): node 5 holds (4 0) from 4 and (6 4 0) from 6;
     when 4 withdraws, assertion also removes the path through 4 *)
  let h = make ~config ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 0 ];
  announce h ~from:6 [ 6; 4; 0 ];
  ignore (drain h.outbox);
  withdraw h ~from:4;
  Alcotest.(check bool) "backup purged too" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = None);
  Alcotest.(check int) "rib empty" 0
    (List.length (Bgp.Speaker.rib_in h.speaker prefix0))

let test_assertion_purges_stale_subpath () =
  let config =
    Bgp.Config.of_enhancement Bgp.Enhancement.Assertion |> fun c ->
    { c with mrai_jitter_min = 1. }
  in
  let h = make ~config ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:6 [ 6; 4; 0 ];
  (* 4 then declares a different path: 6's entry (through 4) is stale *)
  announce h ~from:4 [ 4; 9; 0 ];
  let rib = Bgp.Speaker.rib_in h.speaker prefix0 in
  Alcotest.(check int) "one entry" 1 (List.length rib);
  Alcotest.(check bool) "only 4's fresh path" true
    (match rib with
    | [ (4, p) ] -> Bgp.As_path.equal p (path [ 4; 9; 0 ])
    | _ -> false)

let test_assertion_keeps_consistent_entry () =
  let config =
    Bgp.Config.of_enhancement Bgp.Enhancement.Assertion |> fun c ->
    { c with mrai_jitter_min = 1. }
  in
  let h = make ~config ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:6 [ 6; 4; 0 ];
  (* 4's declared path agrees with the sub-path 6 reported *)
  announce h ~from:4 [ 4; 0 ];
  Alcotest.(check int) "both kept" 2
    (List.length (Bgp.Speaker.rib_in h.speaker prefix0))

let test_assertion_ignores_unrelated_entries () =
  let config =
    Bgp.Config.of_enhancement Bgp.Enhancement.Assertion |> fun c ->
    { c with mrai_jitter_min = 1. }
  in
  let h = make ~config ~node:5 ~peers:[ 4; 6; 7 ] () in
  announce h ~from:7 [ 7; 0 ];
  announce h ~from:6 [ 6; 4; 0 ];
  withdraw h ~from:4;
  (* 7's path does not involve 4 and must survive *)
  Alcotest.(check bool) "unrelated entry kept" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = Some 7)

(* --- Ghost Flushing --- *)

let test_ghost_flushing_flushes_on_worse_path () =
  let config =
    Bgp.Config.of_enhancement Bgp.Enhancement.Ghost_flushing |> fun c ->
    { c with mrai_jitter_min = 1. }
  in
  let h = make ~config ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 0 ];
  ignore (drain h.outbox);
  (* path worsens while the MRAI timer runs: GF sends an immediate
     withdrawal; the longer announcement still follows at expiry *)
  announce h ~from:4 [ 4; 9; 0 ];
  check_msgs "flush withdrawals now" [ wd 4; wd 6 ] (drain h.outbox);
  Dessim.Engine.run h.engine;
  check_msgs "announcement at expiry"
    [ ann 4 [ 5; 4; 9; 0 ]; ann 6 [ 5; 4; 9; 0 ] ]
    (drain h.outbox)

let test_ghost_flushing_no_flush_on_better_path () =
  let config =
    Bgp.Config.of_enhancement Bgp.Enhancement.Ghost_flushing |> fun c ->
    { c with mrai_jitter_min = 1. }
  in
  let h = make ~config ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 9; 0 ];
  ignore (drain h.outbox);
  (* improvement: no flush, just the (delayed) better announcement *)
  announce h ~from:4 [ 4; 0 ];
  check_msgs "no flush" [] (drain h.outbox);
  Dessim.Engine.run h.engine;
  check_msgs "better path announced"
    [ ann 4 [ 5; 4; 0 ]; ann 6 [ 5; 4; 0 ] ]
    (drain h.outbox)

let test_ghost_flushing_idle_timer_no_flush () =
  let config =
    Bgp.Config.of_enhancement Bgp.Enhancement.Ghost_flushing |> fun c ->
    { c with mrai_jitter_min = 1. }
  in
  let h = make ~config ~node:5 ~peers:[ 4 ] () in
  announce h ~from:4 [ 4; 0 ];
  ignore (drain h.outbox);
  Dessim.Engine.run h.engine;
  (* timer is idle now: a worse path is announced immediately, so no
     flush withdrawal is needed *)
  announce h ~from:4 [ 4; 9; 0 ];
  check_msgs "direct announcement" [ ann 4 [ 5; 4; 9; 0 ] ] (drain h.outbox)

(* --- session teardown --- *)

let test_session_down_removes_routes () =
  let h = make ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 0 ];
  announce h ~from:6 [ 6; 4; 0 ];
  ignore (drain h.outbox);
  Bgp.Speaker.session_down h.speaker ~peer:4;
  Alcotest.(check (list int)) "peer list" [ 6 ] (Bgp.Speaker.peers h.speaker);
  Alcotest.(check bool) "fallback via 6" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = Some 6);
  (* no messages to the dead peer *)
  let to_4 = List.filter (fun (p, _) -> p = 4) (drain h.outbox) in
  check_msgs "silent towards dead peer" [] to_4

let test_session_up_dumps_table () =
  let h = make ~node:5 ~peers:[ 4 ] () in
  announce h ~from:4 [ 4; 0 ];
  ignore (drain h.outbox);
  (* a brand-new session to 6 comes up: it must hear our best route *)
  Bgp.Speaker.session_up h.speaker ~peer:6;
  Alcotest.(check (list int)) "peer added" [ 4; 6 ] (Bgp.Speaker.peers h.speaker);
  check_msgs "table dump" [ ann 6 [ 5; 4; 0 ] ] (drain h.outbox)

let test_session_up_idempotent () =
  let h = make ~node:5 ~peers:[ 4 ] () in
  announce h ~from:4 [ 4; 0 ];
  ignore (drain h.outbox);
  Bgp.Speaker.session_up h.speaker ~peer:4;
  check_msgs "nothing re-sent to existing peer" [] (drain h.outbox)

let test_session_bounce () =
  let h = make ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 0 ];
  ignore (drain h.outbox);
  Bgp.Speaker.session_down h.speaker ~peer:4;
  ignore (drain h.outbox);
  (* the session to 4 comes back: we re-advertise whatever we now hold *)
  Bgp.Speaker.session_up h.speaker ~peer:4;
  Alcotest.(check (list int)) "peers restored" [ 4; 6 ]
    (Bgp.Speaker.peers h.speaker);
  (* we lost our only route when the session died, so nothing to dump *)
  check_msgs "no route, no dump" [] (drain h.outbox);
  (* 4 re-announces and the world recovers *)
  announce h ~from:4 [ 4; 0 ];
  Alcotest.(check bool) "route back" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = Some 4)

let test_late_message_from_dead_peer_dropped () =
  (* a message processed after its session died must not resurrect the
     dead peer's routes — there is no withdrawal coming to clean it up *)
  let h = make ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:6 [ 6; 9; 0 ];
  ignore (drain h.outbox);
  Bgp.Speaker.session_down h.speaker ~peer:4;
  (* the late delivery: it was queued before the teardown *)
  announce h ~from:4 [ 4; 0 ];
  Alcotest.(check int) "rib untouched" 1
    (List.length (Bgp.Speaker.rib_in h.speaker prefix0));
  Alcotest.(check bool) "best still via live peer" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = Some 6);
  check_msgs "no reaction" [] (drain h.outbox)

let test_session_down_idempotent () =
  let h = make ~node:5 ~peers:[ 4 ] () in
  announce h ~from:4 [ 4; 0 ];
  ignore (drain h.outbox);
  Bgp.Speaker.session_down h.speaker ~peer:4;
  Bgp.Speaker.session_down h.speaker ~peer:4;
  Alcotest.(check (list int)) "empty" [] (Bgp.Speaker.peers h.speaker)

(* --- T_down at the origin --- *)

let test_withdraw_local () =
  let h = make ~node:0 ~peers:[ 1; 2 ] () in
  Bgp.Speaker.originate h.speaker prefix0;
  ignore (drain h.outbox);
  (* neighbors' poisoned announcements arrive; they are discarded *)
  announce h ~from:1 [ 1; 0 ];
  announce h ~from:2 [ 2; 0 ];
  check_msgs "stable" [] (drain h.outbox);
  Bgp.Speaker.withdraw_local h.speaker prefix0;
  Alcotest.(check bool) "unreachable" true
    (Bgp.Speaker.best h.speaker prefix0 = None);
  check_msgs "withdrawals out immediately" [ wd 1; wd 2 ] (drain h.outbox)

let test_route_change_count () =
  let h = make ~node:5 ~peers:[ 4; 6 ] () in
  Alcotest.(check int) "zero" 0 (Bgp.Speaker.route_change_count h.speaker);
  announce h ~from:4 [ 4; 0 ];
  announce h ~from:6 [ 6; 4; 0 ];
  withdraw h ~from:4;
  (* adopt 4, then fall back to 6 = two best-route changes *)
  Alcotest.(check int) "two changes" 2
    (Bgp.Speaker.route_change_count h.speaker)

(* --- policy export filtering in the speaker --- *)

let test_valley_free_export_in_speaker () =
  (* node 5 with provider 4 and customer 6: a provider-learned route
     must reach the customer but never go back up to the provider *)
  let rel self other =
    match (self, other) with
    | 5, 4 -> Bgp.Policy.Provider
    | 5, 6 -> Bgp.Policy.Customer
    | _ -> Bgp.Policy.Peer_rel
  in
  let config =
    {
      Bgp.Config.default with
      policy = Bgp.Policy.gao_rexford ~rel;
      mrai_jitter_min = 1.;
    }
  in
  let h = make ~config ~node:5 ~peers:[ 4; 6 ] () in
  announce h ~from:4 [ 4; 0 ];
  (* to provider 4: export blocked (and nothing was advertised, so no
     withdrawal either); to customer 6: announced *)
  check_msgs "customer only" [ ann 6 [ 5; 4; 0 ] ] (drain h.outbox);
  Alcotest.(check bool) "nothing at the provider" true
    (Bgp.Speaker.advertised_to h.speaker prefix0 ~peer:4 = None)

(* --- multiple prefixes --- *)

let prefix9 = Bgp.Prefix.make ~origin:9 ()

let announce_p h ~from prefix l =
  Bgp.Speaker.handle_msg h.speaker ~from
    (Bgp.Msg.Announce { prefix; path = path l })

let test_prefixes_are_independent () =
  let h = make ~node:5 ~peers:[ 4; 6 ] () in
  announce_p h ~from:4 prefix0 [ 4; 0 ];
  announce_p h ~from:6 prefix9 [ 6; 9 ];
  Alcotest.(check bool) "prefix0 via 4" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = Some 4);
  Alcotest.(check bool) "prefix9 via 6" true
    (Bgp.Speaker.next_hop h.speaker prefix9 = Some 6);
  (* withdrawing one prefix leaves the other untouched *)
  withdraw h ~from:4;
  Alcotest.(check bool) "prefix0 gone" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = None);
  Alcotest.(check bool) "prefix9 intact" true
    (Bgp.Speaker.next_hop h.speaker prefix9 = Some 6)

let test_mrai_is_per_prefix () =
  let config = { Bgp.Config.default with mrai = 30.; mrai_jitter_min = 1. } in
  let h = make ~config ~node:5 ~peers:[ 4 ] () in
  (* first announcement for prefix0 starts prefix0's timer... *)
  announce_p h ~from:4 prefix0 [ 4; 0 ];
  ignore (drain h.outbox);
  (* ...which must not delay the first announcement for prefix9 *)
  announce_p h ~from:4 prefix9 [ 4; 9 ];
  match drain h.outbox with
  | [ (4, Bgp.Msg.Announce { prefix; _ }) ] ->
      Alcotest.(check bool) "prefix9 immediate" true
        (Bgp.Prefix.equal prefix prefix9)
  | msgs -> Alcotest.failf "expected one announcement, got %d" (List.length msgs)

let test_session_down_clears_all_prefixes () =
  let h = make ~node:5 ~peers:[ 4; 6 ] () in
  announce_p h ~from:4 prefix0 [ 4; 0 ];
  announce_p h ~from:4 prefix9 [ 4; 9 ];
  ignore (drain h.outbox);
  Bgp.Speaker.session_down h.speaker ~peer:4;
  Alcotest.(check bool) "prefix0 lost" true
    (Bgp.Speaker.next_hop h.speaker prefix0 = None);
  Alcotest.(check bool) "prefix9 lost" true
    (Bgp.Speaker.next_hop h.speaker prefix9 = None)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "speaker"
    [
      ( "decision",
        [
          tc "origination announces to all" test_originate_announces_to_all;
          tc "adopts and propagates" test_adopts_and_propagates;
          tc "prefers shorter path" test_prefers_shorter_path;
          tc "tie-break by lower id" test_tie_break_lower_id;
          tc "worse path ignored" test_better_path_does_not_flap;
        ] );
      ( "poison-reverse",
        [
          tc "discards path containing self" test_poison_reverse_discards;
          tc "poisoned update = implicit withdraw"
            test_poisoned_update_is_implicit_withdraw;
        ] );
      ( "withdrawals",
        [
          tc "falls back to stale path" test_withdrawal_falls_back;
          tc "no alternative -> withdrawals" test_withdrawal_without_alternative;
          tc "suppressed when peer holds nothing"
            test_withdrawal_to_peer_without_state_suppressed;
        ] );
      ( "rate-limiting",
        [
          tc "duplicate announcements suppressed"
            test_duplicate_announcement_suppressed;
          tc "MRAI delays subsequent announcements"
            test_mrai_delays_second_announcement;
        ] );
      ( "ssld",
        [
          tc "withholds doomed announcement" test_ssld_sends_withdrawal_instead;
          tc "withdraws previous advertisement"
            test_ssld_withdraws_previous_advertisement;
        ] );
      ( "wrate",
        [
          tc "delays withdrawals" test_wrate_delays_withdrawal;
          tc "announcement supersedes pending withdrawal"
            test_wrate_announcement_supersedes_pending_withdrawal;
        ] );
      ( "assertion",
        [
          tc "purges on withdrawal (paper Fig 1b)"
            test_assertion_purges_on_withdrawal;
          tc "purges stale sub-path" test_assertion_purges_stale_subpath;
          tc "keeps consistent entry" test_assertion_keeps_consistent_entry;
          tc "ignores unrelated entries" test_assertion_ignores_unrelated_entries;
        ] );
      ( "ghost-flushing",
        [
          tc "flushes on worse pending path"
            test_ghost_flushing_flushes_on_worse_path;
          tc "no flush on better path"
            test_ghost_flushing_no_flush_on_better_path;
          tc "no flush when timer idle" test_ghost_flushing_idle_timer_no_flush;
        ] );
      ( "sessions",
        [
          tc "session down removes routes" test_session_down_removes_routes;
          tc "session down idempotent" test_session_down_idempotent;
          tc "late message from dead peer dropped"
            test_late_message_from_dead_peer_dropped;
          tc "session up dumps the table" test_session_up_dumps_table;
          tc "session up idempotent" test_session_up_idempotent;
          tc "session bounce recovers" test_session_bounce;
        ] );
      ( "origin",
        [
          tc "withdraw_local (T_down)" test_withdraw_local;
          tc "route change count" test_route_change_count;
        ] );
      ( "policy",
        [ tc "valley-free export filtering" test_valley_free_export_in_speaker ]
      );
      ( "multi-prefix",
        [
          tc "prefixes are independent" test_prefixes_are_independent;
          tc "MRAI is per (peer, prefix)" test_mrai_is_per_prefix;
          tc "session down clears all prefixes"
            test_session_down_clears_all_prefixes;
        ] );
    ]
