(** BGP UPDATE messages, reduced to what the study needs: a path
    announcement or an explicit withdrawal, per prefix.  The sender is
    implicit in the session the message travels over. *)

type t =
  | Announce of { prefix : Prefix.t; path : As_path.t }
  | Withdraw of { prefix : Prefix.t }

val prefix : t -> Prefix.t

val kind : t -> Netcore.Trace.msg_kind

val pp : Format.formatter -> t -> unit
