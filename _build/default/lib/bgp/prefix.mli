(** Destination prefixes.

    The paper's experiments use a single destination attached to one
    AS; the library supports any number of prefixes, each identified by
    its origin AS and an index distinguishing multiple prefixes of the
    same origin. *)

type t = private { origin : int; index : int }

val make : ?index:int -> origin:int -> unit -> t
(** [index] defaults to [0].  @raise Invalid_argument on negative
    [origin] or [index]. *)

val origin : t -> int

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
