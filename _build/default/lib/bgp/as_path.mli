(** AS paths.

    A path is the ordered list of ASes a route announcement has
    traversed, nearest first: the path [(5 6 4 0)] was announced by AS 5
    and originates at AS 0.  The head of a received path is therefore
    the advertising neighbor.  The empty path denotes a locally
    originated route (the origin's route to its own prefix). *)

type t

val empty : t

val of_list : int list -> t
(** @raise Invalid_argument if the list repeats an AS (AS paths are
    loop-free by construction: a repeated AS would have been discarded
    by poison reverse at that AS). *)

val to_list : t -> int list

val length : t -> int

val is_empty : t -> bool

val contains : t -> int -> bool

val head : t -> int option
(** The advertising neighbor; [None] for the empty path. *)

val prepend : int -> t -> t
(** [prepend v p] is the path AS [v] announces when its best route has
    path [p].  @raise Invalid_argument if [v] already appears in [p]. *)

val suffix_from : t -> int -> t option
(** [suffix_from p u] is the sub-path of [p] starting at [u] (inclusive),
    or [None] when [u] does not appear in [p].  This is the sub-path the
    Assertion enhancement compares against [u]'s latest announcement. *)

val compare : t -> t -> int
(** Total order: shorter first, then lexicographic on AS numbers.  Under
    the paper's shortest-path policy with lowest-ID tie-breaking this is
    exactly route preference (most preferred = smallest). *)

val compare_lex : t -> t -> int
(** Pure lexicographic order, ignoring length. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Paper style: [(5 6 4 0)]. *)

val to_string : t -> string
