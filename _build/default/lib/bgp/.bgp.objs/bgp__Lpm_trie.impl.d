lib/bgp/lpm_trie.ml: Int32 Ipv4 List
