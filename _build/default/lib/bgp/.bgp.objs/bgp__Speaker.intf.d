lib/bgp/speaker.mli: As_path Config Dessim Msg Prefix
