lib/bgp/config.ml: Damping Enhancement Mrai Option Policy
