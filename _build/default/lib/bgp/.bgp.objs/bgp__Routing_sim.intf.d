lib/bgp/routing_sim.mli: Config Netcore Prefix Topo
