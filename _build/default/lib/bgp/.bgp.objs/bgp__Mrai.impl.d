lib/bgp/mrai.ml: Dessim Option Queue
