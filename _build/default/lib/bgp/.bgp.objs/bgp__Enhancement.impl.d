lib/bgp/enhancement.ml: Format List String
