lib/bgp/multi_sim.mli: Config Netcore Prefix Topo
