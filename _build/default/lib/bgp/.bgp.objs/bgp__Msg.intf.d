lib/bgp/msg.mli: As_path Format Netcore Prefix
