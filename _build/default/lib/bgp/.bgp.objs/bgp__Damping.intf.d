lib/bgp/damping.mli:
