lib/bgp/mrai.mli: Dessim
