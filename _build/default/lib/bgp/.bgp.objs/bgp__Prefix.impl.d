lib/bgp/prefix.ml: Format Hashtbl Stdlib
