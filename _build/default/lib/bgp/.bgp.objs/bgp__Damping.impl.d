lib/bgp/damping.ml: Float
