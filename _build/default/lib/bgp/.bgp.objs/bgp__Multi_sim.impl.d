lib/bgp/multi_sim.ml: Array Config Dessim Hashtbl List Msg Netcore Prefix Speaker Topo
