lib/bgp/ipv4.ml: Int32 Option Printf String
