lib/bgp/policy.ml: As_path Topo
