lib/bgp/config.mli: Damping Enhancement Mrai Policy
