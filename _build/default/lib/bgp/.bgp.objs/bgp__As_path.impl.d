lib/bgp/as_path.ml: Format Hashtbl List Printf Stdlib String
