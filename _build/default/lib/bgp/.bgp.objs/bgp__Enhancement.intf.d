lib/bgp/enhancement.mli: Format
