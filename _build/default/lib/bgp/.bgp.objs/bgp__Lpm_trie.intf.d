lib/bgp/lpm_trie.mli: Ipv4
