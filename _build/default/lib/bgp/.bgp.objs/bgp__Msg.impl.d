lib/bgp/msg.ml: As_path Format Netcore Prefix
