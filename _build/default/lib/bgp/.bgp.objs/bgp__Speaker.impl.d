lib/bgp/speaker.ml: As_path Config Damping Dessim Float Hashtbl List Mrai Msg Option Policy Prefix
