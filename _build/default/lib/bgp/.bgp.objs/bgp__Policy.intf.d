lib/bgp/policy.mli: As_path Topo
