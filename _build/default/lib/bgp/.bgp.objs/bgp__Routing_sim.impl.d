lib/bgp/routing_sim.ml: Array Config Dessim Hashtbl List Msg Netcore Prefix Printf Speaker Topo
