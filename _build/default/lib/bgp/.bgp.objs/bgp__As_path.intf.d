lib/bgp/as_path.mli: Format
