lib/bgp/ipv4.mli:
