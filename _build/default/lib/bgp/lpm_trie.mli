(** Longest-prefix-match routing table: a binary trie over CIDR
    prefixes.

    This is the forwarding structure a real router derives from its
    Loc-RIB: overlapping prefixes coexist and an address lookup returns
    the value bound to the most specific covering prefix. *)

type 'a t

val empty : 'a t
(** The empty table (persistent: all operations return new tables). *)

val add : 'a t -> Ipv4.cidr -> 'a -> 'a t
(** Binds (or replaces) the value at exactly this prefix. *)

val remove : 'a t -> Ipv4.cidr -> 'a t
(** Removing an absent prefix is a no-op. *)

val find_exact : 'a t -> Ipv4.cidr -> 'a option

val lookup : 'a t -> Ipv4.addr -> (Ipv4.cidr * 'a) option
(** Longest-prefix match: the most specific prefix containing the
    address, with its value. *)

val size : 'a t -> int
(** Number of bound prefixes. *)

val to_list : 'a t -> (Ipv4.cidr * 'a) list
(** All bindings, in {!Ipv4.cidr_compare} order. *)

val fold : (Ipv4.cidr -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
