(** The BGP convergence enhancement mechanisms compared in the paper
    (§5), plus standard BGP as the baseline.  Exactly one is active per
    experiment, as in the paper's side-by-side comparison. *)

type t =
  | Standard  (** RFC 1771 behaviour: MRAI on announcements only *)
  | Ssld  (** Sender-Side Loop Detection (Labovitz et al.) *)
  | Wrate  (** Withdrawal RAte liTEmiting: MRAI on withdrawals too *)
  | Assertion  (** assertion checking of Adj-RIB-In consistency (Pei et al.) *)
  | Ghost_flushing  (** immediate withdrawal flushes (Bremler-Barr et al.) *)

val all : t list
(** In the paper's presentation order: standard, SSLD, WRATE,
    Assertion, Ghost Flushing. *)

val name : t -> string

val of_string : string -> t option
(** Inverse of {!name}; case-insensitive. *)

val pp : Format.formatter -> t -> unit
