type t =
  | Announce of { prefix : Prefix.t; path : As_path.t }
  | Withdraw of { prefix : Prefix.t }

let prefix = function
  | Announce { prefix; _ } -> prefix
  | Withdraw { prefix } -> prefix

let kind = function
  | Announce _ -> Netcore.Trace.Announce
  | Withdraw _ -> Netcore.Trace.Withdraw

let pp fmt = function
  | Announce { prefix; path } ->
      Format.fprintf fmt "announce %a %a" Prefix.pp prefix As_path.pp path
  | Withdraw { prefix } -> Format.fprintf fmt "withdraw %a" Prefix.pp prefix
