(** BGP protocol configuration.

    The flags mirror the paper's setup: the MRAI timer is applied per
    (destination, neighbor) with a random jitter; withdrawals bypass it
    (RFC 1771) unless WRATE is on; each enhancement is an independent
    flag so ablations can combine them, while {!of_enhancement} yields
    the paper's one-at-a-time configurations. *)

type t = {
  mrai : float;  (** base MRAI value M in seconds; paper default 30 *)
  mrai_jitter_min : float;
      (** each timer interval is drawn uniformly from
          [\[mrai_jitter_min * mrai, mrai\]]; default 0.75 (RFC-style).
          Set to [1.] for a jitterless timer. *)
  wrate : bool;  (** apply MRAI to withdrawals *)
  ssld : bool;  (** sender-side loop detection *)
  assertion : bool;  (** assertion purge of inconsistent RIB-In entries *)
  ghost_flushing : bool;  (** flush-withdrawal on delayed worse paths *)
  rate_limiter : Mrai.mode;
      (** how pending updates behind the MRAI timer are kept:
          [Collapse] (default; latest state wins) or [Fifo] (stale
          intermediate states still transmitted — an ablation of
          implementation-dependent behaviour, see EXPERIMENTS.md) *)
  damping : Damping.params option;
      (** RFC 2439 route-flap damping at every speaker ([None] =
          disabled, the paper's setting; extension, see {!Damping}) *)
  policy : Policy.t;
}

val default : t
(** Standard BGP, MRAI 30 s with 0.75–1.0 jitter, shortest-path policy. *)

val of_enhancement : ?mrai:float -> Enhancement.t -> t
(** The paper's per-enhancement configuration (exactly one mechanism
    active), at the given MRAI (default 30 s). *)

val validate : t -> unit
(** @raise Invalid_argument on negative [mrai] or a jitter factor
    outside (0, 1]. *)
