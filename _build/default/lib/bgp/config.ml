type t = {
  mrai : float;
  mrai_jitter_min : float;
  wrate : bool;
  ssld : bool;
  assertion : bool;
  ghost_flushing : bool;
  rate_limiter : Mrai.mode;
  damping : Damping.params option;
  policy : Policy.t;
}

let default =
  {
    mrai = 30.;
    mrai_jitter_min = 0.75;
    wrate = false;
    ssld = false;
    assertion = false;
    ghost_flushing = false;
    rate_limiter = Mrai.Collapse;
    damping = None;
    policy = Policy.shortest_path;
  }

let of_enhancement ?(mrai = 30.) enhancement =
  let base = { default with mrai } in
  match (enhancement : Enhancement.t) with
  | Standard -> base
  | Ssld -> { base with ssld = true }
  | Wrate -> { base with wrate = true }
  | Assertion -> { base with assertion = true }
  | Ghost_flushing -> { base with ghost_flushing = true }

let validate t =
  if t.mrai < 0. then invalid_arg "Config: negative mrai";
  if t.mrai_jitter_min <= 0. || t.mrai_jitter_min > 1. then
    invalid_arg "Config: mrai_jitter_min outside (0, 1]";
  Option.iter Damping.validate t.damping
