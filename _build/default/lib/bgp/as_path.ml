type t = int list

let empty = []

let contains t v = List.mem v t

let of_list l =
  let seen = Hashtbl.create (List.length l) in
  List.iter
    (fun v ->
      if Hashtbl.mem seen v then
        invalid_arg (Printf.sprintf "As_path.of_list: repeated AS %d" v);
      Hashtbl.add seen v ())
    l;
  l

let to_list t = t

let length = List.length

let is_empty t = t = []

let head = function [] -> None | v :: _ -> Some v

let prepend v t =
  if contains t v then
    invalid_arg (Printf.sprintf "As_path.prepend: AS %d already in path" v);
  v :: t

let rec suffix_from t u =
  match t with
  | [] -> None
  | v :: _ when v = u -> Some t
  | _ :: rest -> suffix_from rest u

let compare_lex = Stdlib.compare

let compare a b =
  let c = Stdlib.compare (length a) (length b) in
  if c <> 0 then c else compare_lex a b

let equal a b = a = b

let pp fmt t =
  Format.fprintf fmt "(%s)" (String.concat " " (List.map string_of_int t))

let to_string t = Format.asprintf "%a" pp t
