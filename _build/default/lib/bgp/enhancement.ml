type t = Standard | Ssld | Wrate | Assertion | Ghost_flushing

let all = [ Standard; Ssld; Wrate; Assertion; Ghost_flushing ]

let name = function
  | Standard -> "standard"
  | Ssld -> "ssld"
  | Wrate -> "wrate"
  | Assertion -> "assertion"
  | Ghost_flushing -> "ghost-flushing"

let of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun e -> name e = s) all

let pp fmt t = Format.pp_print_string fmt (name t)
