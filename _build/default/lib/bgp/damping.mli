(** Route-flap damping (RFC 2439) — extension beyond the paper.

    Each received route carries a per-(peer, prefix) penalty (the
    "figure of merit"): withdrawals and re-advertisements add to it, and
    it decays exponentially with a configurable half-life.  While the
    penalty exceeds the suppress threshold the route is ignored by the
    decision process (and hence not propagated); once it decays below
    the reuse threshold it re-enters.

    Damping is the operational complement of the paper's enhancements:
    instead of speeding convergence it suppresses unstable routes — and
    famously interacts badly with BGP path exploration, since a single
    flap generates enough updates downstream to trip the suppression
    (Mao et al., SIGCOMM 2002).  The [damping] bench group measures
    this on the T_short flap scenario. *)

type params = {
  half_life : float;  (** seconds for the penalty to halve; > 0 *)
  suppress_threshold : float;  (** penalty above which the route is hidden *)
  reuse_threshold : float;
      (** penalty below which a suppressed route returns;
          0 < reuse < suppress *)
  withdrawal_penalty : float;  (** added per withdrawal *)
  update_penalty : float;  (** added per re-advertisement *)
  max_penalty : float;  (** penalty ceiling *)
}

val default_params : params
(** Cisco-like defaults scaled to 1.0 units: half-life 900 s,
    suppress 2.0, reuse 0.75, withdrawal +1.0, re-advertisement +0.5,
    ceiling 12.0. *)

val validate : params -> unit
(** @raise Invalid_argument on non-positive half-life/penalties or
    thresholds out of order. *)

type t
(** Mutable per-(peer, prefix) damping state. *)

val create : params -> t

val penalty : t -> now:float -> float
(** Current (decayed) penalty. *)

val on_withdrawal : t -> now:float -> unit

val on_update : t -> now:float -> unit

val suppressed : t -> now:float -> bool

val reuse_at : t -> now:float -> float option
(** When a currently-suppressed route's penalty will cross the reuse
    threshold; [None] if not suppressed. *)
