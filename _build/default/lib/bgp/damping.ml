type params = {
  half_life : float;
  suppress_threshold : float;
  reuse_threshold : float;
  withdrawal_penalty : float;
  update_penalty : float;
  max_penalty : float;
}

let default_params =
  {
    half_life = 900.;
    suppress_threshold = 2.0;
    reuse_threshold = 0.75;
    withdrawal_penalty = 1.0;
    update_penalty = 0.5;
    max_penalty = 12.0;
  }

let validate p =
  if p.half_life <= 0. then invalid_arg "Damping: half_life <= 0";
  if p.reuse_threshold <= 0. then invalid_arg "Damping: reuse_threshold <= 0";
  if p.suppress_threshold <= p.reuse_threshold then
    invalid_arg "Damping: suppress_threshold <= reuse_threshold";
  if p.withdrawal_penalty < 0. || p.update_penalty < 0. then
    invalid_arg "Damping: negative penalty increment";
  if p.max_penalty < p.suppress_threshold then
    invalid_arg "Damping: max_penalty below suppress_threshold"

type t = {
  params : params;
  mutable penalty : float;  (** as of [stamp] *)
  mutable stamp : float;
  mutable is_suppressed : bool;
}

let create params =
  validate params;
  { params; penalty = 0.; stamp = neg_infinity; is_suppressed = false }

let decay_to t ~now =
  if now > t.stamp && t.penalty > 0. then begin
    let dt = now -. t.stamp in
    t.penalty <- t.penalty *. (0.5 ** (dt /. t.params.half_life))
  end;
  if now > t.stamp then t.stamp <- now

let refresh_suppression t =
  (* hysteresis: suppress above the suppress threshold, release only
     below the (lower) reuse threshold *)
  if t.is_suppressed then begin
    if t.penalty < t.params.reuse_threshold then t.is_suppressed <- false
  end
  else if t.penalty > t.params.suppress_threshold then t.is_suppressed <- true

let penalty t ~now =
  decay_to t ~now;
  refresh_suppression t;
  t.penalty

let bump t ~now amount =
  decay_to t ~now;
  t.penalty <- Float.min (t.penalty +. amount) t.params.max_penalty;
  refresh_suppression t

let on_withdrawal t ~now = bump t ~now t.params.withdrawal_penalty

let on_update t ~now = bump t ~now t.params.update_penalty

let suppressed t ~now =
  decay_to t ~now;
  refresh_suppression t;
  t.is_suppressed

let reuse_at t ~now =
  if not (suppressed t ~now) then None
  else
    (* penalty * 0.5^(dt/half_life) = reuse  =>
       dt = half_life * log2(penalty / reuse).  Release requires the
       penalty strictly below the threshold, so land a hair past the
       crossing instant — otherwise a timer armed exactly at it finds
       the route still suppressed and re-arms for the same time,
       forever. *)
    let dt =
      t.params.half_life
      *. (Float.log (t.penalty /. t.params.reuse_threshold) /. Float.log 2.)
    in
    Some (now +. dt +. 1e-6)
