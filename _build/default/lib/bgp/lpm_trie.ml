(* A binary trie branching on address bits, most significant first.  A
   node at depth d corresponds to a d-bit prefix; [value] is bound when
   that exact prefix is in the table. *)

type 'a t = Empty | Node of { value : 'a option; zero : 'a t; one : 'a t }

let empty = Empty

let node value zero one =
  match (value, zero, one) with
  | None, Empty, Empty -> Empty
  | _ -> Node { value; zero; one }

let add t prefix v =
  let len = Ipv4.mask_length prefix and net = Ipv4.network prefix in
  let rec go t depth =
    let value, zero, one =
      match t with
      | Empty -> (None, Empty, Empty)
      | Node { value; zero; one } -> (value, zero, one)
    in
    if depth = len then Node { value = Some v; zero; one }
    else if Ipv4.bit net depth then
      Node { value; zero; one = go one (depth + 1) }
    else Node { value; zero = go zero (depth + 1); one }
  in
  go t 0

let remove t prefix =
  let len = Ipv4.mask_length prefix and net = Ipv4.network prefix in
  let rec go t depth =
    match t with
    | Empty -> Empty
    | Node { value; zero; one } ->
        if depth = len then node None zero one
        else if Ipv4.bit net depth then node value zero (go one (depth + 1))
        else node value (go zero (depth + 1)) one
  in
  go t 0

let find_exact t prefix =
  let len = Ipv4.mask_length prefix and net = Ipv4.network prefix in
  let rec go t depth =
    match t with
    | Empty -> None
    | Node { value; zero; one } ->
        if depth = len then value
        else if Ipv4.bit net depth then go one (depth + 1)
        else go zero (depth + 1)
  in
  go t 0

let lookup t addr =
  let rec go t depth best =
    match t with
    | Empty -> best
    | Node { value; zero; one } ->
        let best =
          match value with
          | Some v -> Some (Ipv4.cidr addr depth, v)
          | None -> best
        in
        if depth = 32 then best
        else if Ipv4.bit addr depth then go one (depth + 1) best
        else go zero (depth + 1) best
  in
  go t 0 None

let fold f t acc =
  (* reconstruct each prefix from the path; [bits] accumulates the
     address bits chosen so far, most significant first *)
  let rec go t depth prefix_bits acc =
    match t with
    | Empty -> acc
    | Node { value; zero; one } ->
        let acc =
          match value with
          | None -> acc
          | Some v ->
              let addr = Ipv4.addr_of_int32 prefix_bits in
              f (Ipv4.cidr addr depth) v acc
        in
        (* depth = 32 has no children *)
        if depth = 32 then acc
        else
          let acc = go zero (depth + 1) prefix_bits acc in
          let one_bits =
            Int32.logor prefix_bits (Int32.shift_left 1l (31 - depth))
          in
          go one (depth + 1) one_bits acc
  in
  go t 0 0l acc

let to_list t =
  fold (fun p v acc -> (p, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> Ipv4.cidr_compare a b)

let size t = fold (fun _ _ n -> n + 1) t 0
