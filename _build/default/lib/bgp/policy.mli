(** Route selection and export policies.

    The decision process ranks candidate routes with [prefer] (a strict
    total order on distinct candidates), filters inbound routes with
    [import_ok] and outbound announcements with [export_ok].

    {!shortest_path} is the paper's policy: prefer shorter AS paths,
    break ties toward the lexicographically smallest path — whose first
    element is the advertising neighbor, so this is exactly the paper's
    "smaller node ID is used for tie-breaking".

    {!gao_rexford} implements customer/peer/provider routing with
    valley-free export, provided as an extension beyond the paper (see
    DESIGN.md §7). *)

type candidate = { peer : int; path : As_path.t }
(** A usable Adj-RIB-In entry: [path] as received from [peer] (its head
    is [peer]). *)

type t = {
  name : string;
  prefer : self:int -> candidate -> candidate -> int;
      (** Negative when the first candidate is preferred.  Must be a
          total order on candidates with distinct paths. *)
  import_ok : self:int -> candidate -> bool;
      (** Additional import filtering.  Loop rejection (own AS in the
          path) is enforced by the speaker itself, not here. *)
  export_ok : self:int -> to_peer:int -> learned_from:int option -> bool;
      (** Whether the best route, learned from [learned_from] ([None]
          for a locally originated route), may be announced to
          [to_peer]. *)
}

val shortest_path : t

type relationship =
  | Customer  (** the other AS is my customer *)
  | Peer_rel  (** settlement-free peer *)
  | Provider  (** the other AS is my provider *)

val gao_rexford : rel:(int -> int -> relationship) -> t
(** [gao_rexford ~rel] where [rel a b] is [b]'s role from [a]'s point of
    view.  Preference: customer routes over peer routes over provider
    routes, then shortest path, then lowest-ID tie-break.  Export
    (valley-free): routes learned from a customer (or originated
    locally) go to everyone; routes learned from a peer or provider go
    to customers only. *)

val relationships_by_degree : Topo.Graph.t -> int -> int -> relationship
(** Degree heuristic for synthetic topologies: the higher-degree
    endpoint of an edge is the provider; equal degrees make peers.
    Suitable as the [rel] argument of {!gao_rexford}. *)
