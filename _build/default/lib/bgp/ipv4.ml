type addr = int32

let addr_of_int32 i = i

let addr_to_int32 a = a

let addr_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 ->
            (* reject forms like "01" or "+1" *)
            if string_of_int v = x then Some v else None
        | Some _ | None -> None
      in
      (match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d ->
          Some
            (Int32.logor
               (Int32.shift_left (Int32.of_int a) 24)
               (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d)))
      | _ -> None)
  | _ -> None

let addr_to_string a =
  let v = Int32.to_int (Int32.logand a 0xFF_FF_FFl) in
  Printf.sprintf "%ld.%d.%d.%d"
    (Int32.shift_right_logical a 24)
    ((v lsr 16) land 0xFF)
    ((v lsr 8) land 0xFF)
    (v land 0xFF)

let addr_equal = Int32.equal

type cidr = { net : addr; len : int }

let mask_of_length len =
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let cidr a len =
  if len < 0 || len > 32 then invalid_arg "Ipv4.cidr: mask length outside 0..32";
  { net = Int32.logand a (mask_of_length len); len }

let cidr_of_string s =
  match String.split_on_char '/' s with
  | [ addr ] -> Option.map (fun a -> cidr a 32) (addr_of_string addr)
  | [ addr; len ] -> (
      match (addr_of_string addr, int_of_string_opt len) with
      | Some a, Some l when l >= 0 && l <= 32 -> Some (cidr a l)
      | _ -> None)
  | _ -> None

let cidr_to_string c = Printf.sprintf "%s/%d" (addr_to_string c.net) c.len

let network c = c.net

let mask_length c = c.len

let cidr_equal a b = Int32.equal a.net b.net && a.len = b.len

let cidr_compare a b =
  (* compare networks as unsigned 32-bit values *)
  let unsigned x = Int32.to_int (Int32.shift_right_logical x 1) * 2 + Int32.to_int (Int32.logand x 1l) in
  let c = compare (unsigned a.net) (unsigned b.net) in
  if c <> 0 then c else compare a.len b.len

let contains_addr c a =
  Int32.equal (Int32.logand a (mask_of_length c.len)) c.net

let subsumes outer inner =
  outer.len <= inner.len && contains_addr outer inner.net

let bit a i =
  if i < 0 || i > 31 then invalid_arg "Ipv4.bit: index outside 0..31";
  Int32.logand (Int32.shift_right_logical a (31 - i)) 1l = 1l
