type t = { origin : int; index : int }

let make ?(index = 0) ~origin () =
  if origin < 0 then invalid_arg "Prefix.make: negative origin";
  if index < 0 then invalid_arg "Prefix.make: negative index";
  { origin; index }

let origin t = t.origin

let compare = Stdlib.compare

let equal a b = a = b

let hash = Hashtbl.hash

let pp fmt t =
  if t.index = 0 then Format.fprintf fmt "p%d" t.origin
  else Format.fprintf fmt "p%d.%d" t.origin t.index
