type event =
  | Tdown
  | Tlong of { a : int; b : int }
  | Tup
  | Trecover of { a : int; b : int }
  | Tshort of { a : int; b : int; down_for : float }

type outcome = {
  trace : Netcore.Trace.t;
  prefix : Prefix.t;
  t_fail : float;
  convergence_end : float;
  converged : bool;
  warmup_end : float;
  updates_after_fail : int;
  withdrawals_after_fail : int;
  events_executed : int;
  route_changes : int;
}

let convergence_time o = o.convergence_end -. o.t_fail

(* Quiet gap between warm-up quiescence and failure injection; any value
   works since the warmed-up network is silent (all MRAI timers idle
   once the queue drains). *)
let failure_gap = 10.

let link_key a b = if a < b then (a, b) else (b, a)

let run ?(params = Netcore.Params.default) ?(config = Config.default)
    ?(max_events = 20_000_000) ~graph ~origin ~event ~seed () =
  Netcore.Params.validate params;
  Config.validate config;
  let n = Topo.Graph.n_nodes graph in
  if origin < 0 || origin >= n then
    invalid_arg "Routing_sim.run: origin out of range";
  if not (Topo.Graph.is_connected graph) then
    invalid_arg "Routing_sim.run: graph must be connected";
  (match event with
  | Tdown | Tup -> ()
  | Tlong { a; b } | Trecover { a; b } | Tshort { a; b; _ } ->
      if not (Topo.Graph.has_edge graph a b) then
        invalid_arg
          (Printf.sprintf "Routing_sim.run: event link (%d,%d) absent" a b));
  (match event with
  | Tshort { down_for; _ } ->
      if down_for <= 0. then
        invalid_arg "Routing_sim.run: Tshort down_for must be positive"
  | Tdown | Tup | Tlong _ | Trecover _ -> ());
  let engine = Dessim.Engine.create () in
  let trace = Netcore.Trace.create ~n in
  let root_rng = Dessim.Rng.create ~seed in
  let proc_rng = Dessim.Rng.split root_rng ~label:"proc" in
  let links = Hashtbl.create (Topo.Graph.n_edges graph) in
  List.iter
    (fun (a, b) ->
      Hashtbl.add links (link_key a b)
        (Netcore.Link.create ~a ~b ~delay:params.link_delay))
    (Topo.Graph.edges graph);
  let node_procs = Array.init n (fun _ -> Netcore.Node_proc.create ()) in
  let speakers = Array.make n None in
  let speaker i =
    match speakers.(i) with
    | Some s -> s
    | None -> assert false (* all created before any event runs *)
  in
  let draw_proc_delay () =
    Dessim.Rng.uniform proc_rng ~lo:params.proc_delay_min
      ~hi:params.proc_delay_max
  in
  let emit_from src ~peer msg =
    let link =
      match Hashtbl.find_opt links (link_key src peer) with
      | Some l -> l
      | None -> invalid_arg "Routing_sim: emit to non-neighbor"
    in
    Netcore.Trace.log_send trace
      ~time:(Dessim.Engine.now engine)
      ~src ~dst:peer ~kind:(Msg.kind msg);
    let deliver () =
      Netcore.Node_proc.submit node_procs.(peer) ~engine
        ~delay:(draw_proc_delay ()) ~work:(fun () ->
          Netcore.Trace.log_process trace
            ~time:(Dessim.Engine.now engine)
            ~node:peer ~from:src ~kind:(Msg.kind msg);
          Speaker.handle_msg (speaker peer) ~from:src msg)
    in
    (* A send onto a dead link is dropped silently, like packets into a
       torn-down TCP session. *)
    ignore (Netcore.Link.send link ~engine ~from:src ~deliver : bool)
  in
  let prefix = Prefix.make ~origin () in
  let on_next_hop_change_for node ~prefix:p ~next_hop =
    assert (Prefix.equal p prefix);
    Netcore.Fib_history.record (Netcore.Trace.fib trace)
      ~time:(Dessim.Engine.now engine)
      ~node ~next_hop
  in
  for i = 0 to n - 1 do
    let rng = Dessim.Rng.split root_rng ~label:("speaker-" ^ string_of_int i) in
    speakers.(i) <-
      Some
        (Speaker.create ~engine ~config ~rng ~node:i
           ~peers:(Topo.Graph.neighbors graph i)
           ~emit:(emit_from i)
           ~on_next_hop_change:(on_next_hop_change_for i)
           ())
  done;
  (* Phase 1: warm-up convergence.  Inverse events warm up without
     the element they will add: Tup never originates here, Trecover
     starts with its link (and both sessions over it) down. *)
  (match event with
  | Trecover { a; b } ->
      Netcore.Link.fail (Hashtbl.find links (link_key a b));
      Speaker.session_down (speaker a) ~peer:b;
      Speaker.session_down (speaker b) ~peer:a
  | Tdown | Tlong _ | Tup | Tshort _ -> ());
  (match event with
  | Tup -> ()
  | Tdown | Tlong _ | Trecover _ | Tshort _ ->
      let (_ : Dessim.Engine.handle) =
        Dessim.Engine.schedule engine ~at:0. (fun () ->
            Speaker.originate (speaker origin) prefix)
      in
      ());
  Dessim.Engine.run ~max_events engine;
  let warmup_end = Dessim.Engine.now engine in
  let warmup_drained = Dessim.Engine.events_executed engine < max_events in
  (* Phase 2: failure injection. *)
  let t_fail = warmup_end +. failure_gap in
  let (_ : Dessim.Engine.handle) =
    Dessim.Engine.schedule engine ~at:t_fail (fun () ->
        match event with
        | Tdown -> Speaker.withdraw_local (speaker origin) prefix
        | Tup -> Speaker.originate (speaker origin) prefix
        | Tlong { a; b } ->
            let link = Hashtbl.find links (link_key a b) in
            Netcore.Link.fail link;
            Netcore.Trace.log_link_event trace ~time:t_fail ~a ~b ~up:false;
            Speaker.session_down (speaker a) ~peer:b;
            Speaker.session_down (speaker b) ~peer:a
        | Trecover { a; b } ->
            let link = Hashtbl.find links (link_key a b) in
            Netcore.Link.restore link;
            Netcore.Trace.log_link_event trace ~time:t_fail ~a ~b ~up:true;
            Speaker.session_up (speaker a) ~peer:b;
            Speaker.session_up (speaker b) ~peer:a
        | Tshort { a; b; down_for } ->
            let link = Hashtbl.find links (link_key a b) in
            Netcore.Link.fail link;
            Netcore.Trace.log_link_event trace ~time:t_fail ~a ~b ~up:false;
            Speaker.session_down (speaker a) ~peer:b;
            Speaker.session_down (speaker b) ~peer:a;
            let (_ : Dessim.Engine.handle) =
              Dessim.Engine.schedule engine ~at:(t_fail +. down_for)
                (fun () ->
                  Netcore.Link.restore link;
                  Netcore.Trace.log_link_event trace
                    ~time:(t_fail +. down_for) ~a ~b ~up:true;
                  Speaker.session_up (speaker a) ~peer:b;
                  Speaker.session_up (speaker b) ~peer:a)
            in
            ())
  in
  Dessim.Engine.run ~max_events engine;
  let converged =
    warmup_drained && Dessim.Engine.events_executed engine < max_events
  in
  let convergence_end =
    match Netcore.Trace.last_send_at_or_after trace ~from:t_fail with
    | Some time -> time
    | None -> t_fail
  in
  let route_changes =
    let total = ref 0 in
    for i = 0 to n - 1 do
      total := !total + Speaker.route_change_count (speaker i)
    done;
    !total
  in
  {
    trace;
    prefix;
    t_fail;
    convergence_end;
    converged;
    warmup_end;
    updates_after_fail =
      Netcore.Trace.count_kind_from trace ~from:t_fail ~kind:Netcore.Trace.Announce;
    withdrawals_after_fail =
      Netcore.Trace.count_kind_from trace ~from:t_fail ~kind:Netcore.Trace.Withdraw;
    events_executed = Dessim.Engine.events_executed engine;
    route_changes;
  }
