type candidate = { peer : int; path : As_path.t }

type t = {
  name : string;
  prefer : self:int -> candidate -> candidate -> int;
  import_ok : self:int -> candidate -> bool;
  export_ok : self:int -> to_peer:int -> learned_from:int option -> bool;
}

let shortest_path =
  {
    name = "shortest-path";
    prefer = (fun ~self:_ a b -> As_path.compare a.path b.path);
    import_ok = (fun ~self:_ _ -> true);
    export_ok = (fun ~self:_ ~to_peer:_ ~learned_from:_ -> true);
  }

type relationship = Customer | Peer_rel | Provider

let class_rank = function Customer -> 0 | Peer_rel -> 1 | Provider -> 2

let gao_rexford ~rel =
  let prefer ~self a b =
    let ca = class_rank (rel self a.peer) and cb = class_rank (rel self b.peer) in
    let c = compare ca cb in
    if c <> 0 then c else As_path.compare a.path b.path
  in
  (* Valley-free export: own and customer-learned routes go to everyone;
     peer- and provider-learned routes go to customers only. *)
  let export_ok ~self ~to_peer ~learned_from =
    match learned_from with
    | None -> true
    | Some peer -> (
        match rel self peer with
        | Customer -> true
        | Peer_rel | Provider -> rel self to_peer = Customer)
  in
  {
    name = "gao-rexford";
    prefer;
    import_ok = (fun ~self:_ _ -> true);
    export_ok;
  }

let relationships_by_degree g a b =
  let da = Topo.Graph.degree g a and db = Topo.Graph.degree g b in
  if da = db then Peer_rel else if db > da then Provider else Customer
