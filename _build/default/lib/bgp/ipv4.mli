(** IPv4 addresses and CIDR prefixes.

    The simulation studies route *dynamics* and identifies destinations
    abstractly ({!Prefix}), but a BGP library is routinely fed real
    prefixes.  This module provides the concrete address/prefix types,
    parsing and containment algebra; {!Netcore.Lpm_trie} provides
    longest-prefix-match forwarding over them. *)

type addr = private int32
(** An IPv4 address.  The private representation is the big-endian
    32-bit value; use {!addr_of_string} / {!addr_to_string}. *)

val addr_of_int32 : int32 -> addr

val addr_to_int32 : addr -> int32

val addr_of_string : string -> addr option
(** Dotted quad, e.g. ["192.0.2.1"].  [None] on malformed input. *)

val addr_to_string : addr -> string

val addr_equal : addr -> addr -> bool

type cidr
(** A CIDR prefix: an address and a mask length in [0..32], stored
    canonically (host bits cleared). *)

val cidr : addr -> int -> cidr
(** [cidr a len] clears the host bits of [a].
    @raise Invalid_argument if [len] is outside [0..32]. *)

val cidr_of_string : string -> cidr option
(** ["10.0.0.0/8"] form; a bare address means [/32]. *)

val cidr_to_string : cidr -> string

val network : cidr -> addr

val mask_length : cidr -> int

val cidr_equal : cidr -> cidr -> bool

val cidr_compare : cidr -> cidr -> int
(** Total order: by network, then by mask length (shorter first). *)

val contains_addr : cidr -> addr -> bool

val subsumes : cidr -> cidr -> bool
(** [subsumes outer inner]: every address of [inner] is in [outer]. *)

val bit : addr -> int -> bool
(** [bit a i] is address bit [i], [0] being the most significant — the
    branching order of the LPM trie. *)
