(** Run trace: everything the measurement stages need from a routing
    simulation — the FIB history plus logs of routing-message sends and
    link events.

    Convergence time in the paper "starts when the link failure happens
    and ends when the last BGP update message is sent"; {!last_send_at_or_after}
    supports exactly that measurement. *)

type msg_kind = Announce | Withdraw

type send = { time : float; src : int; dst : int; kind : msg_kind }

type process = { time : float; node : int; from : int; kind : msg_kind }
(** A routing message finishing its processing at [node] (this is when
    it takes effect on the RIB/FIB). *)

type link_event = { time : float; a : int; b : int; up : bool }

type t

val create : n:int -> t

val fib : t -> Fib_history.t

val log_send : t -> time:float -> src:int -> dst:int -> kind:msg_kind -> unit

val log_link_event : t -> time:float -> a:int -> b:int -> up:bool -> unit

val log_process :
  t -> time:float -> node:int -> from:int -> kind:msg_kind -> unit

val sends : t -> send list
(** Chronological. *)

val sends_from : t -> from:float -> send list

val send_count_from : t -> from:float -> int

val count_kind_from : t -> from:float -> kind:msg_kind -> int

val last_send_at_or_after : t -> from:float -> float option
(** Time of the last message sent at or after [from] — the end of the
    convergence period when the simulation has drained. *)

val link_events : t -> link_event list

val processes : t -> process list
(** Chronological. *)

val last_process_at : t -> node:int -> at_or_before:float -> process option
(** The most recent message that finished processing at [node] no later
    than [at_or_before] — the trigger candidate for a routing change at
    that instant. *)
