lib/netcore/link.ml: Dessim Printf
