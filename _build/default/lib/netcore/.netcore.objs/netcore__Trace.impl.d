lib/netcore/trace.ml: Dessim Fib_history List Stdlib
