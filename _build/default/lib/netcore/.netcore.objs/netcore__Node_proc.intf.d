lib/netcore/node_proc.mli: Dessim
