lib/netcore/params.ml: Format
