lib/netcore/fib_history.mli:
