lib/netcore/node_proc.ml: Dessim Stdlib
