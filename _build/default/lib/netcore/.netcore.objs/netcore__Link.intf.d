lib/netcore/link.mli: Dessim
