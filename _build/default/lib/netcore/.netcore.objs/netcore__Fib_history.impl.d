lib/netcore/fib_history.ml: Array Dessim List Printf
