lib/netcore/trace.mli: Fib_history
