lib/netcore/params.mli: Format
