type msg_kind = Announce | Withdraw

type send = { time : float; src : int; dst : int; kind : msg_kind }

type link_event = { time : float; a : int; b : int; up : bool }

type process = { time : float; node : int; from : int; kind : msg_kind }

type t = {
  fib : Fib_history.t;
  sends : send Dessim.Vec.t;
  links : link_event Dessim.Vec.t;
  procs : process Dessim.Vec.t;
}

let create ~n =
  {
    fib = Fib_history.create ~n;
    sends = Dessim.Vec.create ();
    links = Dessim.Vec.create ();
    procs = Dessim.Vec.create ();
  }

let fib t = t.fib

let log_send t ~time ~src ~dst ~kind =
  Dessim.Vec.push t.sends { time; src; dst; kind }

let log_link_event t ~time ~a ~b ~up =
  Dessim.Vec.push t.links { time; a; b; up }

let sends t = Dessim.Vec.to_list t.sends

let sends_from t ~from =
  List.filter (fun (s : send) -> s.time >= from) (sends t)

let send_count_from t ~from =
  Dessim.Vec.fold_left
    (fun acc (s : send) -> if s.time >= from then acc + 1 else acc)
    0 t.sends

let count_kind_from t ~from ~kind =
  Dessim.Vec.fold_left
    (fun acc (s : send) -> if s.time >= from && s.kind = kind then acc + 1 else acc)
    0 t.sends

let last_send_at_or_after t ~from =
  Dessim.Vec.fold_left
    (fun acc (s : send) ->
      if s.time >= from then
        match acc with
        | None -> Some s.time
        | Some best -> Some (Stdlib.max best s.time)
      else acc)
    None t.sends

let link_events t = Dessim.Vec.to_list t.links

let log_process t ~time ~node ~from ~kind =
  Dessim.Vec.push t.procs { time; node; from; kind }

let processes t = Dessim.Vec.to_list t.procs

let last_process_at t ~node ~at_or_before =
  Dessim.Vec.fold_left
    (fun acc (p : process) ->
      if p.node = node && p.time <= at_or_before then
        match acc with
        (* among equal times keep the later log entry: it is the one
           whose processing completed last *)
        | Some (best : process) when best.time > p.time -> acc
        | Some _ | None -> Some p
      else acc)
    None t.procs
