type t = {
  a : int;
  b : int;
  delay : float;
  mutable up : bool;
  mutable epoch : int;
}

let create ~a ~b ~delay =
  if delay <= 0. then invalid_arg "Link.create: delay <= 0";
  if a = b then invalid_arg "Link.create: self-link";
  { a; b; delay; up = true; epoch = 0 }

let endpoints t = (t.a, t.b)

let is_up t = t.up

let fail t =
  if t.up then begin
    t.up <- false;
    t.epoch <- t.epoch + 1
  end

let restore t =
  if not t.up then begin
    t.up <- true;
    t.epoch <- t.epoch + 1
  end

let send t ~engine ~from ~deliver =
  if from <> t.a && from <> t.b then
    invalid_arg
      (Printf.sprintf "Link.send: node %d is not an endpoint of (%d,%d)" from
         t.a t.b);
  if not t.up then false
  else begin
    let sent_epoch = t.epoch in
    let (_ : Dessim.Engine.handle) =
      Dessim.Engine.schedule_after engine ~delay:t.delay (fun () ->
          if t.up && t.epoch = sent_epoch then deliver ())
    in
    true
  end
