type t = { mutable busy_until : float; mutable depth : int }

let create () = { busy_until = neg_infinity; depth = 0 }

let busy_until t = t.busy_until

let queue_depth t = t.depth

let submit t ~engine ~delay ~work =
  if delay < 0. then invalid_arg "Node_proc.submit: negative delay";
  let now = Dessim.Engine.now engine in
  let start = Stdlib.max now t.busy_until in
  let completion = start +. delay in
  t.busy_until <- completion;
  t.depth <- t.depth + 1;
  let (_ : Dessim.Engine.handle) =
    Dessim.Engine.schedule engine ~at:completion (fun () ->
        t.depth <- t.depth - 1;
        work ())
  in
  ()
