type t = {
  link_delay : float;
  proc_delay_min : float;
  proc_delay_max : float;
  ttl : int;
  pkt_rate : float;
}

let default =
  {
    link_delay = 0.002;
    proc_delay_min = 0.1;
    proc_delay_max = 0.5;
    ttl = 128;
    pkt_rate = 10.;
  }

let validate t =
  if t.link_delay <= 0. then invalid_arg "Params: link_delay <= 0";
  if t.proc_delay_min < 0. then invalid_arg "Params: proc_delay_min < 0";
  if t.proc_delay_max < t.proc_delay_min then
    invalid_arg "Params: proc_delay_max < proc_delay_min";
  if t.ttl <= 0 then invalid_arg "Params: ttl <= 0";
  if t.pkt_rate <= 0. then invalid_arg "Params: pkt_rate <= 0"

let pp fmt t =
  Format.fprintf fmt
    "link=%gs proc=U(%g,%g)s ttl=%d rate=%g/s"
    t.link_delay t.proc_delay_min t.proc_delay_max t.ttl t.pkt_rate
