(** Per-node serial message processor.

    A router processes one routing message at a time; each message
    occupies the CPU for a random draw of the processing delay.  This
    serialization is behaviourally significant: the paper's footnote 5
    attributes Ghost Flushing's degradation on large cliques to real
    path information queueing behind storms of flushing withdrawals. *)

type t

val create : unit -> t

val busy_until : t -> float

val queue_depth : t -> int
(** Messages accepted but whose processing has not completed. *)

val submit :
  t ->
  engine:Dessim.Engine.t ->
  delay:float ->
  work:(unit -> unit) ->
  unit
(** [submit t ~engine ~delay ~work] enqueues a message arriving now;
    [work] (the protocol handler) runs when the CPU reaches it, i.e. at
    [max now busy_until +. delay].
    @raise Invalid_argument if [delay < 0.]. *)
