(** Physical-layer timing parameters (paper §4.2).

    The paper deliberately sets the message processing delay two orders
    of magnitude above the link propagation delay, so that processing —
    and above it the MRAI timer — dominates loop duration, and sets a
    slow packet rate to keep queueing negligible. *)

type t = {
  link_delay : float;  (** one-way propagation delay, seconds; paper: 2 ms *)
  proc_delay_min : float;
      (** per-message processing delay lower bound; paper: 0.1 s *)
  proc_delay_max : float;  (** upper bound; paper: 0.5 s *)
  ttl : int;  (** initial packet TTL; paper: 128 *)
  pkt_rate : float;  (** packets per second per source; paper: 10 *)
}

val default : t
(** The paper's settings: 2 ms links, U(0.1, 0.5) s processing, TTL 128,
    10 pkt/s. *)

val validate : t -> unit
(** @raise Invalid_argument on non-positive delays/rate, inverted
    processing bounds, or [ttl <= 0]. *)

val pp : Format.formatter -> t -> unit
