(** Point-to-point link between two adjacent nodes.

    Models what the simulation needs from "BGP runs over TCP": reliable,
    in-order, fixed-delay delivery while the link is up, and loss of
    all in-flight messages when the link fails (the TCP session dies
    with the link; queued updates never arrive).  In-flight loss is
    implemented with an epoch counter: deliveries scheduled before a
    failure carry a stale epoch and are discarded on arrival. *)

type t

val create : a:int -> b:int -> delay:float -> t
(** @raise Invalid_argument if [delay <= 0.] or [a = b]. *)

val endpoints : t -> int * int

val is_up : t -> bool

val fail : t -> unit
(** Takes the link down and invalidates in-flight messages.  Idempotent. *)

val restore : t -> unit
(** Brings the link back up (a fresh epoch; messages sent while down
    stay lost). *)

val send :
  t -> engine:Dessim.Engine.t -> from:int -> deliver:(unit -> unit) -> bool
(** [send t ~engine ~from ~deliver] schedules [deliver] after the link
    delay.  Returns [false] (and schedules nothing) when the link is
    down at send time.  [deliver] is silently dropped if the link fails
    before the message arrives.
    @raise Invalid_argument if [from] is not an endpoint. *)
