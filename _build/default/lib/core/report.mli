(** Plain-text table rendering for experiment output (the bench harness
    prints one table per paper figure). *)

val table :
  title:string -> header:string list -> rows:string list list -> string
(** Column-aligned table with a title line and a rule under the
    header.  Rows shorter than the header are padded with empty cells.
    @raise Invalid_argument if a row is longer than the header. *)

val float_cell : float -> string
(** Compact numeric cell: %.2f. *)

val ratio_cell : float -> string
(** Percentage cell: %.1f%%. *)
