lib/core/report.ml: List Printf Stdlib String
