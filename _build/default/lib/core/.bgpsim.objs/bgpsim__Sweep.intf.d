lib/core/sweep.mli: Experiment Metrics Stats
