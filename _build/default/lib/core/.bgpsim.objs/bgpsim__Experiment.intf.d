lib/core/experiment.mli: Bgp Loopscan Metrics Netcore Topo Traffic
