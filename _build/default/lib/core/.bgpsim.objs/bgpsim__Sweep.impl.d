lib/core/sweep.ml: Array Experiment List Metrics Stats
