lib/core/experiment.ml: Bgp Dessim List Loopscan Metrics Netcore Printf Stdlib Topo Traffic
