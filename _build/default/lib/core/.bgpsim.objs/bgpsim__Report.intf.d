lib/core/report.mli:
