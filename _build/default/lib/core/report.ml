let float_cell x = Printf.sprintf "%.2f" x

let ratio_cell x = Printf.sprintf "%.1f%%" (100. *. x)

let trim_right s =
  let len = ref (String.length s) in
  while !len > 0 && s.[!len - 1] = ' ' do
    decr len
  done;
  String.sub s 0 !len

let table ~title ~header ~rows =
  let cols = List.length header in
  let pad row =
    let len = List.length row in
    if len > cols then invalid_arg "Report.table: row wider than header";
    row @ List.init (cols - len) (fun _ -> "")
  in
  let rows = List.map pad rows in
  let all = header :: rows in
  let widths =
    List.init cols (fun c ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row c)))
          0 all)
  in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           cell ^ String.make (w - String.length cell) ' ')
         row)
    |> trim_right
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n"
    (title :: render_row header :: rule :: List.map render_row rows)
  ^ "\n"
