(** Parameter sweeps with multi-seed averaging — the shape of every
    figure in the paper: a metric series against network size, MRAI
    value, or enhancement. *)

val over_seeds :
  Experiment.spec -> seeds:int list -> Metrics.Run_metrics.t
(** Mean metrics over re-runs of [spec] with each seed (the paper's
    "simulations were repeated a number of times with different
    destination ASes and failed links").
    @raise Invalid_argument on an empty seed list. *)

val series :
  make:('x -> Experiment.spec) ->
  seeds:int list ->
  'x list ->
  ('x * Metrics.Run_metrics.t) list
(** One averaged data point per sweep value. *)

val default_seeds : int list
(** Seeds 1–5. *)

val over_seeds_summary :
  Experiment.spec ->
  seeds:int list ->
  metric:(Metrics.Run_metrics.t -> float) ->
  Stats.Descriptive.summary
(** Dispersion of one metric across seeds (mean, sd, min/median/max) —
    for reporting run-to-run variance alongside the mean, e.g. on the
    high-variance Internet [T_long] scenarios.
    @raise Invalid_argument on an empty seed list. *)

val linearity :
  ('x * Metrics.Run_metrics.t) list ->
  x:('x -> float) ->
  y:(Metrics.Run_metrics.t -> float) ->
  Stats.Linear_fit.t
(** Least-squares check of the paper's "linearly proportional"
    observations over a sweep. *)
