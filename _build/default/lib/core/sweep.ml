let over_seeds spec ~seeds =
  if seeds = [] then invalid_arg "Sweep.over_seeds: empty seed list";
  List.map (fun seed -> Experiment.metrics { spec with seed }) seeds
  |> Metrics.Run_metrics.mean

let series ~make ~seeds xs =
  List.map (fun x -> (x, over_seeds (make x) ~seeds)) xs

let default_seeds = [ 1; 2; 3; 4; 5 ]

let over_seeds_summary spec ~seeds ~metric =
  if seeds = [] then invalid_arg "Sweep.over_seeds_summary: empty seed list";
  List.map (fun seed -> metric (Experiment.metrics { spec with seed })) seeds
  |> Array.of_list
  |> Stats.Descriptive.summarize

let linearity points ~x ~y =
  Stats.Linear_fit.fit
    (Array.of_list (List.map (fun (px, m) -> (x px, y m)) points))
