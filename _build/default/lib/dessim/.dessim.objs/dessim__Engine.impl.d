lib/dessim/engine.ml: Event_queue Printf
