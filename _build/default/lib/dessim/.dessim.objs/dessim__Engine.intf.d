lib/dessim/engine.mli:
