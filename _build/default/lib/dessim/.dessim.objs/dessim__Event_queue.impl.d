lib/dessim/event_queue.ml: Array Float Stdlib
