lib/dessim/rng.ml: Array Hashtbl List Random
