lib/dessim/vec.mli:
