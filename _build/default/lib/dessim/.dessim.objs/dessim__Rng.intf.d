lib/dessim/rng.mli:
