lib/dessim/vec.ml: Array Stdlib
