lib/dessim/event_queue.mli:
