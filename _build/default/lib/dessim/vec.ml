type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let push t x =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let bigger = Array.make (Stdlib.max 16 (2 * cap)) x in
    Array.blit t.data 0 bigger 0 t.size;
    t.data <- bigger
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Vec.get: index out of range";
  t.data.(i)

let last t = if t.size = 0 then None else Some t.data.(t.size - 1)

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.size

let to_list t = Array.to_list (to_array t)
