(** Growable arrays (append-only usage pattern in the simulator's
    trace/log structures). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-range index. *)

val last : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list
