(** Descriptive statistics over float samples.

    All functions operating on arrays treat the array as an unordered
    sample.  Functions that require a non-empty sample raise
    [Invalid_argument] on an empty input; this is stated per function. *)

val sum : float array -> float
(** Compensated (Kahan) summation; [0.] on the empty array. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty sample. *)

val variance : float array -> float
(** Unbiased sample variance (divides by [n - 1]); [0.] for samples of
    size [<= 1]. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min : float array -> float
(** Smallest sample.  @raise Invalid_argument on an empty sample. *)

val max : float array -> float
(** Largest sample.  @raise Invalid_argument on an empty sample. *)

val percentile : float -> float array -> float
(** [percentile p xs] is the [p]-th percentile ([0. <= p <= 100.]) using
    linear interpolation between closest ranks.  Copies and sorts the
    input.  @raise Invalid_argument on an empty sample or [p] outside
    [0., 100.]. *)

val median : float array -> float
(** [median xs = percentile 50. xs]. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}
(** A five-number-style summary of a sample. *)

val summarize : float array -> summary
(** @raise Invalid_argument on an empty sample. *)

val pp_summary : Format.formatter -> summary -> unit
