let sum xs =
  (* Kahan compensated summation: experiment sweeps add many samples of
     very different magnitudes (seconds vs. counts in the thousands). *)
  let total = ref 0. and comp = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  check_nonempty "Descriptive.mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n <= 1 then 0.
  else
    let m = mean xs in
    let devs = Array.map (fun x -> (x -. m) *. (x -. m)) xs in
    sum devs /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let min xs =
  check_nonempty "Descriptive.min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check_nonempty "Descriptive.max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let percentile p xs =
  check_nonempty "Descriptive.percentile" xs;
  if p < 0. || p > 100. then
    invalid_arg "Descriptive.percentile: p outside [0, 100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile 50. xs

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  check_nonempty "Descriptive.summarize" xs;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = min xs;
    max = max xs;
    median = median xs;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g"
    s.n s.mean s.stddev s.min s.median s.max
