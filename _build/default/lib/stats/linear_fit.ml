type t = { slope : float; intercept : float; r2 : float }

let fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Linear_fit.fit: need at least two points";
  let xs = Array.map fst points and ys = Array.map snd points in
  let mx = Descriptive.mean xs and my = Descriptive.mean ys in
  let sxx = ref 0. and sxy = ref 0. in
  Array.iter
    (fun (x, y) ->
      sxx := !sxx +. ((x -. mx) *. (x -. mx));
      sxy := !sxy +. ((x -. mx) *. (y -. my)))
    points;
  if !sxx = 0. then invalid_arg "Linear_fit.fit: all x values coincide";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let ss_tot = ref 0. and ss_res = ref 0. in
  Array.iter
    (fun (x, y) ->
      let fitted = (slope *. x) +. intercept in
      ss_tot := !ss_tot +. ((y -. my) *. (y -. my));
      ss_res := !ss_res +. ((y -. fitted) *. (y -. fitted)))
    points;
  let r2 =
    if !ss_tot = 0. then if !ss_res = 0. then 1. else 0.
    else 1. -. (!ss_res /. !ss_tot)
  in
  { slope; intercept; r2 }

let predict t x = (t.slope *. x) +. t.intercept

let pp fmt t =
  Format.fprintf fmt "y = %.4g x + %.4g (R^2 = %.4f)" t.slope t.intercept t.r2
