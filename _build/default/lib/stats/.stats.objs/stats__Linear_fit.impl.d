lib/stats/linear_fit.ml: Array Descriptive Format
