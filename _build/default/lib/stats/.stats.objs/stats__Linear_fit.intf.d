lib/stats/linear_fit.mli: Format
