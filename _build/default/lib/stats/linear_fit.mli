(** Ordinary least-squares fit of [y = slope * x + intercept].

    Used to check the paper's "linearly proportional" observations
    (Observations 1 and 2): convergence time, overall looping duration
    and TTL-exhaustion counts as functions of the MRAI value. *)

type t = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination in [0, 1] *)
}

val fit : (float * float) array -> t
(** [fit points] computes the least-squares line through [points].
    When all [y] are identical, [r2] is [1.] if the fit is exact and
    [0.] otherwise (degenerate total variance).
    @raise Invalid_argument with fewer than two points or when all [x]
    coincide. *)

val predict : t -> float -> float

val pp : Format.formatter -> t -> unit
