lib/loopscan/scanner.mli: Format Netcore
