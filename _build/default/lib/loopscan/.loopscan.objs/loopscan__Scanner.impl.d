lib/loopscan/scanner.ml: Array Dessim Format Hashtbl List Netcore Printf Stats Stdlib String
