lib/loopscan/causes.mli: Format Netcore Scanner
