lib/loopscan/causes.ml: Format List Netcore Scanner
