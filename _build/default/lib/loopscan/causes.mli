(** Classification of what triggered each transient loop.

    A loop is born when its trigger node repoints its FIB; that
    repointing is the decision taken right after the node processed
    some routing message, or reacted to a local session event.
    Correlating loop births with the trace's processed-message log
    separates:

    - withdrawal-triggered loops — the node lost its route and fell
      back to a stale path (the paper's Figure 1 mechanism);
    - announcement-triggered loops — a (possibly implicit-withdraw)
      update made the node re-decide onto a stale path;
    - session-triggered loops — the node reacted to its own link
      failing, with no message involved ([T_long] at the endpoints).

    This refines the paper's aggregate view, following its announced
    next step of studying individual loops. *)

type cause = Withdrawal_triggered | Announcement_triggered | Session_triggered

val cause_name : cause -> string

val classify :
  trace:Netcore.Trace.t -> Scanner.report -> (Scanner.loop * cause) list
(** One entry per loop, in the report's order. *)

type breakdown = {
  withdrawal_triggered : int;
  announcement_triggered : int;
  session_triggered : int;
}

val breakdown : (Scanner.loop * cause) list -> breakdown

val pp_breakdown : Format.formatter -> breakdown -> unit
