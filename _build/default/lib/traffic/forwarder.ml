type fate =
  | Delivered of { time : float; hops : int }
  | Ttl_exhausted of { time : float; at_node : int }
  | Unreachable of { time : float; at_node : int }

let fate_time = function
  | Delivered { time; _ } | Ttl_exhausted { time; _ } | Unreachable { time; _ }
    ->
      time

let pp_fate fmt = function
  | Delivered { time; hops } ->
      Format.fprintf fmt "delivered at %g after %d hops" time hops
  | Ttl_exhausted { time; at_node } ->
      Format.fprintf fmt "TTL exhausted at node %d, time %g" at_node time
  | Unreachable { time; at_node } ->
      Format.fprintf fmt "unreachable at node %d, time %g" at_node time

let walk ~fib ~origin ~link_delay ~ttl ~src ~send_time =
  if ttl <= 0 then invalid_arg "Forwarder.walk: ttl <= 0";
  if link_delay <= 0. then invalid_arg "Forwarder.walk: link_delay <= 0";
  let rec step node time ttl_left hops =
    if node = origin then Delivered { time; hops }
    else if ttl_left = 0 then Ttl_exhausted { time; at_node = node }
    else
      match Netcore.Fib_history.lookup fib ~node ~time with
      | None -> Unreachable { time; at_node = node }
      | Some next ->
          step next (time +. link_delay) (ttl_left - 1) (hops + 1)
  in
  step src send_time ttl 0
