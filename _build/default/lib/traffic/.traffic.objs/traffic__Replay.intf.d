lib/traffic/replay.mli: Netcore
