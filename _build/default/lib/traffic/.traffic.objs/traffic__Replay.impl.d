lib/traffic/replay.ml: Array Dessim Forwarder Fun List Option
