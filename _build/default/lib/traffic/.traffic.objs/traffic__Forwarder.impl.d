lib/traffic/forwarder.ml: Format Netcore
