lib/traffic/per_source.mli: Netcore
