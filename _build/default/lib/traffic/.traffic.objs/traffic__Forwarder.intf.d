lib/traffic/forwarder.mli: Format Netcore
