lib/traffic/per_source.ml: Dessim Forwarder Fun List
