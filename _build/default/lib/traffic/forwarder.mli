(** Hop-by-hop packet forwarding against a FIB history.

    A packet at node [v] at time [t] is forwarded to [v]'s next hop as
    of [t] (the FIB between two change instants is constant, so this is
    exactly what a co-simulated packet would see); each hop takes one
    link delay and decrements the TTL by one — one TTL unit per AS, as
    in the paper's simulations. *)

type fate =
  | Delivered of { time : float; hops : int }
  | Ttl_exhausted of { time : float; at_node : int }
      (** the paper's loop indicator *)
  | Unreachable of { time : float; at_node : int }
      (** dropped at a node with no route *)

val fate_time : fate -> float

val pp_fate : Format.formatter -> fate -> unit

val walk :
  fib:Netcore.Fib_history.t ->
  origin:int ->
  link_delay:float ->
  ttl:int ->
  src:int ->
  send_time:float ->
  fate
(** [walk ~fib ~origin ~link_delay ~ttl ~src ~send_time] traces one
    packet from [src] to the destination attached to [origin].
    @raise Invalid_argument if [ttl <= 0] or [link_delay <= 0.]. *)
