(** Per-source breakdown of packet fates.

    The aggregate looping ratio hides which ASes suffered: the paper's
    footnote 4 notes, e.g., that in a B-Clique [T_long] the chain nodes
    2..n/2 are unaffected by the failure of link [(n, 0)] and their
    packets never loop.  This module measures exactly that. *)

type stats = {
  src : int;
  sent : int;
  delivered : int;
  unreachable : int;
  exhausted : int;
}

val looping_ratio : stats -> float
(** [exhausted / sent]; [0.] for an idle source. *)

val run :
  fib:Netcore.Fib_history.t ->
  origin:int ->
  n:int ->
  link_delay:float ->
  ttl:int ->
  rate:float ->
  window:float * float ->
  seed:int ->
  ?sources:int list ->
  unit ->
  stats list
(** Same workload as {!Replay.run} (same arguments, same per-source
    phase draws) but keeps the counters per source, ascending by
    source. *)

val affected : stats list -> int list
(** Sources that saw at least one TTL exhaustion, ascending. *)
