type stats = {
  src : int;
  sent : int;
  delivered : int;
  unreachable : int;
  exhausted : int;
}

let looping_ratio s =
  if s.sent = 0 then 0. else float_of_int s.exhausted /. float_of_int s.sent

let run ~fib ~origin ~n ~link_delay ~ttl ~rate ~window:(t0, t1) ~seed ?sources
    () =
  if rate <= 0. then invalid_arg "Per_source.run: rate <= 0";
  if t1 < t0 then invalid_arg "Per_source.run: window end before start";
  let sources =
    match sources with
    | Some l -> l
    | None -> List.filter (fun v -> v <> origin) (List.init n Fun.id)
  in
  let rng = Dessim.Rng.create ~seed in
  let interval = 1. /. rate in
  let one src =
    let phase = Dessim.Rng.float rng interval in
    let sent = ref 0
    and delivered = ref 0
    and unreachable = ref 0
    and exhausted = ref 0 in
    let time = ref (t0 +. phase) in
    while !time < t1 do
      incr sent;
      (match
         Forwarder.walk ~fib ~origin ~link_delay ~ttl ~src ~send_time:!time
       with
      | Forwarder.Delivered _ -> incr delivered
      | Forwarder.Unreachable _ -> incr unreachable
      | Forwarder.Ttl_exhausted _ -> incr exhausted);
      time := !time +. interval
    done;
    {
      src;
      sent = !sent;
      delivered = !delivered;
      unreachable = !unreachable;
      exhausted = !exhausted;
    }
  in
  List.map one sources |> List.sort (fun a b -> compare a.src b.src)

let affected stats =
  List.filter_map (fun s -> if s.exhausted > 0 then Some s.src else None) stats
