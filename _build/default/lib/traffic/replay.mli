(** Constant-rate traffic replay — the paper's measurement workload.

    Every non-destination AS hosts one source sending a constant-rate
    packet stream at the destination (paper: 10 pkt/s, chosen slow
    enough that queueing is negligible, and with a 100 ms inter-packet
    gap so loops outliving 256 ms catch at least one packet).  Sources
    are given a small random phase so they do not fire in lockstep.

    Packets are replayed over the window [t_fail, convergence_end]; the
    resulting counts define the paper's metrics: the number of TTL
    exhaustions, the looping ratio (exhaustions / packets sent during
    convergence), and the overall looping duration (first to last
    exhaustion). *)

type result = {
  sent : int;
  sent_for_ratio : int;
      (** packets sent before the ratio cutoff — the paper's "number of
          packets sent during convergence time" denominator *)
  delivered : int;
  unreachable : int;
  exhausted : int;
  first_exhaustion : float option;
  last_exhaustion : float option;
  exhaustion_times : float array;  (** sorted ascending *)
}

val overall_looping_duration : result -> float
(** Last minus first exhaustion time; [0.] with fewer than two
    exhaustions. *)

val looping_ratio : result -> float
(** [exhausted / sent_for_ratio]; [0.] when nothing was sent. *)

val run :
  fib:Netcore.Fib_history.t ->
  origin:int ->
  n:int ->
  link_delay:float ->
  ttl:int ->
  rate:float ->
  window:float * float ->
  seed:int ->
  ?ratio_cutoff:float ->
  ?sources:int list ->
  unit ->
  result
(** [run ~fib ~origin ~n ... ~window:(t0, t1) ~seed ()] replays streams
    from every node except [origin] (or from [sources] when given),
    sending each packet at [phase + k/rate] for send times in
    [\[t0, t1)].  [ratio_cutoff] (default [t1]) bounds the denominator
    of the looping ratio: experiment drivers extend the send window a
    little past convergence to catch loops that outlive the last sent
    message, while counting only packets sent during convergence.
    @raise Invalid_argument on a non-positive [rate], [t1 < t0], or a
    source equal to [origin] / out of range. *)
