(** Per-node convergence analysis of a run.

    The paper measures convergence as a single network-wide instant
    (the last update sent).  This module refines that: each node's own
    convergence instant is its last FIB change, giving the distribution
    of how long individual ASes stayed unstable, and an activity
    timeline of FIB churn — useful for seeing the MRAI-paced rounds of
    path exploration. *)

type t = {
  per_node : (int * float option) list;
      (** (node, last FIB change at/after the event), [None] for nodes
          whose forwarding never changed; ascending by node *)
  affected_nodes : int;  (** nodes with at least one change *)
  mean_settle : float;
      (** mean of (last change − event time) over affected nodes; [0.]
          when none *)
  max_settle : float;
  total_changes : int;
}

val analyze : fib:Netcore.Fib_history.t -> from:float -> t
(** [analyze ~fib ~from] summarizes all changes at/after [from] (the
    event injection time). *)

val churn_timeline :
  fib:Netcore.Fib_history.t -> from:float -> bucket:float -> (float * int) list
(** FIB changes at/after [from], bucketed into [bucket]-second bins:
    [(bin start, change count)], only non-empty bins, ascending.
    @raise Invalid_argument if [bucket <= 0.]. *)

val pp : Format.formatter -> t -> unit
