(** Text timelines: compact terminal rendering of activity over a run
    (FIB churn, active loops, TTL exhaustions), used by the examples to
    show the MRAI-paced rounds of path exploration at a glance. *)

val sparkline : ?width:int -> float array -> string
(** Renders the series scaled into [' ' .- =+ *#@] glyphs, resampled to
    [width] columns (default 60) by bucket-summing.  The empty array
    renders as [""]. *)

val bucketize :
  values:(float * float) list -> from:float -> until:float -> width:int ->
  float array
(** Sums weighted events [(time, weight)] into [width] equal bins over
    [\[from, until)]; events outside the window are dropped.
    @raise Invalid_argument if [until <= from] or [width <= 0]. *)

val loops_band :
  loops:Loopscan.Scanner.loop list ->
  from:float ->
  until:float ->
  width:int ->
  string
(** One character per bin: the count of loops alive in that bin rendered
    as [' '], ['1'..'9'], ['+'] for ten or more. *)

val render_run :
  fib:Netcore.Fib_history.t ->
  loops:Loopscan.Scanner.report ->
  exhaustion_times:float array ->
  from:float ->
  until:float ->
  ?width:int ->
  unit ->
  string
(** Three aligned rows — FIB churn sparkline, live-loop band, exhaustion
    sparkline — with a time axis line. *)
