(** CSV export of run data, for offline plotting of the figures
    (gnuplot/matplotlib) and for inspecting traces outside OCaml.

    All functions return the CSV text (header line included, [\n] line
    endings); callers choose where to write it. *)

val fib_changes_csv : Netcore.Fib_history.t -> from:float -> string
(** Columns: [time,node,next_hop] ([next_hop] empty for "no route"). *)

val sends_csv : Netcore.Trace.t -> from:float -> string
(** Columns: [time,src,dst,kind]. *)

val loops_csv : Loopscan.Scanner.report -> until:float -> string
(** Columns: [birth,death,duration,size,trigger,members] ([death] empty
    while alive; [members] separated by [;]). *)

val series_csv :
  x_label:string ->
  (float * Run_metrics.t) list ->
  string
(** One row per sweep point with the headline metric columns — the
    data behind each bench figure. *)
