lib/metrics/export.ml: Buffer List Loopscan Netcore Printf Run_metrics String
