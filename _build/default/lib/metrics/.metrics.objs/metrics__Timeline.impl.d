lib/metrics/timeline.ml: Array Char Float List Loopscan Netcore Option Printf Stdlib String
