lib/metrics/convergence.mli: Format Netcore
