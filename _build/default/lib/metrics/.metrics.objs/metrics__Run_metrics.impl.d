lib/metrics/run_metrics.ml: Bgp Float Format List Loopscan Printf Traffic
