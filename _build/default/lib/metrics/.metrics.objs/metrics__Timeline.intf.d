lib/metrics/timeline.mli: Loopscan Netcore
