lib/metrics/run_metrics.mli: Bgp Format Loopscan Traffic
