lib/metrics/convergence.ml: Array Float Format Hashtbl List Netcore Option
