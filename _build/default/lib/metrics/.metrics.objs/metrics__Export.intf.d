lib/metrics/export.mli: Loopscan Netcore Run_metrics
