let fib_changes_csv fib ~from =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time,node,next_hop\n";
  List.iter
    (fun (c : Netcore.Fib_history.change) ->
      Buffer.add_string buf
        (Printf.sprintf "%.6f,%d,%s\n" c.time c.node
           (match c.next_hop with None -> "" | Some v -> string_of_int v)))
    (Netcore.Fib_history.changes_from fib ~from);
  Buffer.contents buf

let kind_name = function
  | Netcore.Trace.Announce -> "announce"
  | Netcore.Trace.Withdraw -> "withdraw"

let sends_csv trace ~from =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time,src,dst,kind\n";
  List.iter
    (fun (s : Netcore.Trace.send) ->
      Buffer.add_string buf
        (Printf.sprintf "%.6f,%d,%d,%s\n" s.time s.src s.dst (kind_name s.kind)))
    (Netcore.Trace.sends_from trace ~from);
  Buffer.contents buf

let loops_csv (report : Loopscan.Scanner.report) ~until =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "birth,death,duration,size,trigger,members\n";
  List.iter
    (fun (l : Loopscan.Scanner.loop) ->
      Buffer.add_string buf
        (Printf.sprintf "%.6f,%s,%.6f,%d,%d,%s\n" l.birth
           (match l.death with None -> "" | Some d -> Printf.sprintf "%.6f" d)
           (Loopscan.Scanner.duration l ~until)
           (Loopscan.Scanner.size l) l.trigger
           (String.concat ";" (List.map string_of_int l.members))))
    report.loops;
  Buffer.contents buf

let series_csv ~x_label series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (x_label
    ^ ",convergence_time,overall_looping_duration,ttl_exhaustions,packets_sent,looping_ratio,updates_sent,withdrawals_sent,loop_count\n"
    );
  List.iter
    (fun (x, (m : Run_metrics.t)) ->
      Buffer.add_string buf
        (Printf.sprintf "%g,%.4f,%.4f,%d,%d,%.6f,%d,%d,%d\n" x
           m.convergence_time m.overall_looping_duration m.ttl_exhaustions
           m.packets_sent m.looping_ratio m.updates_sent m.withdrawals_sent
           m.loop_count))
    series;
  Buffer.contents buf
