(** Internet-like AS-level topology generator.

    The paper evaluates on 29/48/75/110-node AS graphs derived from
    actual BGP routing tables (Premore's gallery at ssfnet.org, now
    unavailable).  This module is the documented substitution (see
    DESIGN.md §4): a seeded generator reproducing the topological
    properties those graphs contribute to the studied behaviour —
    a heavy-tailed degree distribution, a densely-meshed core of
    high-degree transit ASes, and many low-degree stub ASes hanging off
    the core.

    Construction: nodes join one at a time and attach to 1 or 2
    existing nodes — mostly by preferential attachment (probability
    proportional to current degree, growing the transit core), partly
    uniformly at random (growing the low-degree tendrils that give real
    AS graphs their depth) — seeding from a small initial triangle;
    afterwards, extra peering edges are meshed between the
    highest-degree nodes.  The result is always connected. *)

type params = {
  n : int;  (** number of ASes, [>= 3] *)
  dual_home_fraction : float;
      (** fraction of joining nodes attaching with two links rather than
          one, in [0, 1]; default 0.45 *)
  uniform_attach_fraction : float;
      (** probability an attachment ignores degree and picks uniformly,
          in [0, 1]; default 0.4 *)
  core_fraction : float;
      (** top-degree fraction of nodes treated as the core; default 0.1 *)
  core_extra_edges : int;
      (** extra peering edges meshed into the core; default [n / 10] *)
}

val default_params : n:int -> params

val generate : ?params:params -> seed:int -> int -> Graph.t
(** [generate ~seed n] builds a connected AS-like graph on [n] nodes.
    [params] overrides the defaults (its [n] field must equal [n]).
    @raise Invalid_argument on [n < 3] or inconsistent params. *)

val stub_nodes : Graph.t -> int list
(** Nodes of minimal degree — candidate destination ASes, matching the
    paper's "destination AS was randomly chosen among the nodes with
    the lowest degrees". *)

val degree_stats : Graph.t -> Stats.Descriptive.summary
(** Degree distribution summary, reported in EXPERIMENTS.md to document
    the substitution. *)
