lib/topo/internet.mli: Graph Stats
