lib/topo/graph_metrics.mli: Format Graph
