lib/topo/internet.ml: Array Dessim Float Fun Graph List Stats Stdlib
