lib/topo/graph_metrics.ml: Array Format Graph Hashtbl List Option Stdlib
