lib/topo/graph.ml: Array Format Fun Hashtbl List Printf Queue Stdlib
