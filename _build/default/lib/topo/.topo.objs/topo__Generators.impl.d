lib/topo/generators.ml: Graph List
