lib/topo/as_rel.ml: Array Graph Hashtbl List Printf Stdlib String
