lib/topo/as_rel.mli: Graph
