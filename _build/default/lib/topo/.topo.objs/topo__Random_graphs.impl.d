lib/topo/random_graphs.ml: Array Dessim Float Graph List Queue Stdlib
