lib/topo/topo_io.ml: Buffer Graph List Printf String
