lib/topo/generators.mli: Graph
