lib/topo/topo_io.mli: Graph
