lib/topo/random_graphs.mli: Graph
