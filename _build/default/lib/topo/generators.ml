let require cond msg = if not cond then invalid_arg msg

let clique n =
  require (n >= 1) "Generators.clique: n >= 1 required";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n ~edges:!edges

let chain n =
  require (n >= 1) "Generators.chain: n >= 1 required";
  Graph.create ~n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  require (n >= 3) "Generators.ring: n >= 3 required";
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  Graph.create ~n ~edges:((0, n - 1) :: edges)

let star n =
  require (n >= 2) "Generators.star: n >= 2 required";
  Graph.create ~n ~edges:(List.init (n - 1) (fun i -> (0, i + 1)))

let b_clique n =
  require (n >= 2) "Generators.b_clique: n >= 2 required";
  let edges = ref [] in
  (* chain over 0 .. n-1 *)
  for i = 0 to n - 2 do
    edges := (i, i + 1) :: !edges
  done;
  (* clique over n .. 2n-1 *)
  for u = n to (2 * n) - 1 do
    for v = u + 1 to (2 * n) - 1 do
      edges := (u, v) :: !edges
    done
  done;
  (* the destination's direct link into the core, and the chain's
     attachment to the far side of the core *)
  edges := (0, n) :: (n - 1, (2 * n) - 1) :: !edges;
  Graph.create ~n:(2 * n) ~edges:!edges

let balanced_tree ~depth ~fanout =
  require (depth >= 0) "Generators.balanced_tree: depth >= 0 required";
  require (fanout >= 1) "Generators.balanced_tree: fanout >= 1 required";
  let edges = ref [] in
  let next = ref 1 in
  let rec expand parent level =
    if level < depth then
      for _ = 1 to fanout do
        let child = !next in
        incr next;
        edges := (parent, child) :: !edges;
        expand child (level + 1)
      done
  in
  expand 0 0;
  Graph.create ~n:!next ~edges:!edges

let grid ~rows ~cols =
  require (rows >= 1 && cols >= 1) "Generators.grid: rows, cols >= 1 required";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.create ~n:(rows * cols) ~edges:!edges

let barbell n =
  require (n >= 2) "Generators.barbell: n >= 2 required";
  let edges = ref [ (n - 1, n) ] in
  let add_clique base =
    for u = base to base + n - 1 do
      for v = u + 1 to base + n - 1 do
        edges := (u, v) :: !edges
      done
    done
  in
  add_clique 0;
  add_clique n;
  Graph.create ~n:(2 * n) ~edges:!edges
