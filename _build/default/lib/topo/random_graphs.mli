(** Random topology generators from the networking literature, beyond
    the {!Internet} AS-graph model: Waxman's geometric random graphs
    and the Generalized Linear Preference (GLP) model of Bu & Towsley.

    The paper's footnote 1 remarks that degree-based generators are not
    suitable at the small sizes SSFNET could handle; having these
    models available lets users probe exactly that sensitivity (how the
    reproduction's trends vary with topology provenance).

    All generators are deterministic in the seed and always return
    connected graphs (a minimal number of shortest bridging edges is
    added between components when the raw draw is disconnected; this
    mildly biases very sparse parameter choices toward trees). *)

val waxman :
  ?alpha:float -> ?beta:float -> seed:int -> int -> Graph.t
(** [waxman ~seed n] places [n >= 2] nodes uniformly in the unit square
    and connects each pair with probability
    [alpha * exp (-d / (beta * sqrt 2.))] where [d] is their Euclidean
    distance.  Defaults: [alpha = 0.4], [beta = 0.2].
    @raise Invalid_argument if [n < 2], or [alpha]/[beta] outside
    (0, 1]. *)

val glp :
  ?m:int -> ?beta:float -> seed:int -> int -> Graph.t
(** [glp ~seed n] grows a graph by Generalized Linear Preference:
    each arriving node attaches [m] edges to existing nodes chosen with
    probability proportional to [degree - beta]; [beta < 1] tunes how
    heavy the tail is (negative values flatten it).  Defaults: [m = 1],
    [beta = 0.5].
    @raise Invalid_argument if [n < 2], [m < 1], or [beta >= 1.]. *)
