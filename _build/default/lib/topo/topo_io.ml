let to_edge_list g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n_nodes g));
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    (Graph.edges g);
  Buffer.contents buf

let of_edge_list text =
  let lines = String.split_on_char '\n' text in
  let significant =
    List.filter
      (fun line ->
        let line = String.trim line in
        line <> "" && not (String.length line > 0 && line.[0] = '#'))
      lines
  in
  match significant with
  | [] -> invalid_arg "Topo_io.of_edge_list: empty input"
  | header :: rest ->
      let n =
        match String.split_on_char ' ' (String.trim header) with
        | [ "n"; count ] -> (
            match int_of_string_opt count with
            | Some n -> n
            | None ->
                invalid_arg "Topo_io.of_edge_list: unparsable node count")
        | _ ->
            invalid_arg
              "Topo_io.of_edge_list: first line must be 'n <nodes>'"
      in
      let parse_edge line =
        match
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some u, Some v -> (u, v)
            | _ ->
                invalid_arg
                  (Printf.sprintf "Topo_io.of_edge_list: bad edge line %S"
                     line))
        | _ ->
            invalid_arg
              (Printf.sprintf "Topo_io.of_edge_list: bad edge line %S" line)
      in
      Graph.create ~n ~edges:(List.map parse_edge rest)

let to_dot ?(name = "topology") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  %d;\n" v))
    (Graph.nodes g);
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
