type params = {
  n : int;
  dual_home_fraction : float;
  uniform_attach_fraction : float;
  core_fraction : float;
  core_extra_edges : int;
}

let default_params ~n =
  {
    n;
    dual_home_fraction = 0.45;
    uniform_attach_fraction = 0.4;
    core_fraction = 0.1;
    core_extra_edges = n / 10;
  }

let validate p =
  if p.n < 3 then invalid_arg "Internet.generate: n >= 3 required";
  if p.dual_home_fraction < 0. || p.dual_home_fraction > 1. then
    invalid_arg "Internet.generate: dual_home_fraction outside [0, 1]";
  if p.uniform_attach_fraction < 0. || p.uniform_attach_fraction > 1. then
    invalid_arg "Internet.generate: uniform_attach_fraction outside [0, 1]";
  if p.core_fraction <= 0. || p.core_fraction > 1. then
    invalid_arg "Internet.generate: core_fraction outside (0, 1]";
  if p.core_extra_edges < 0 then
    invalid_arg "Internet.generate: negative core_extra_edges"

(* Pick an existing node with probability proportional to its degree,
   excluding nodes already in [excluded]. *)
let preferential_pick rng degrees ~upto ~excluded =
  let total = ref 0 in
  for v = 0 to upto - 1 do
    if not (List.mem v excluded) then total := !total + degrees.(v)
  done;
  if !total = 0 then None
  else begin
    let target = Dessim.Rng.int rng !total in
    let acc = ref 0 and found = ref (-1) in
    let v = ref 0 in
    while !found < 0 && !v < upto do
      if not (List.mem !v excluded) then begin
        acc := !acc + degrees.(!v);
        if !acc > target then found := !v
      end;
      incr v
    done;
    if !found < 0 then None else Some !found
  end

let generate ?params ~seed n =
  let p = match params with None -> default_params ~n | Some p -> p in
  if p.n <> n then invalid_arg "Internet.generate: params.n <> n";
  validate p;
  let rng = Dessim.Rng.create ~seed in
  let degrees = Array.make n 0 in
  let edges = ref [] in
  let add_edge u v =
    edges := (u, v) :: !edges;
    degrees.(u) <- degrees.(u) + 1;
    degrees.(v) <- degrees.(v) + 1
  in
  (* seed triangle: the embryonic core *)
  add_edge 0 1;
  add_edge 1 2;
  add_edge 0 2;
  (* Growth: each joining AS attaches to one or two providers.  A
     preferential pick grows the high-degree transit core; a uniform
     pick hangs the new AS off an arbitrary existing one, producing the
     low-degree tendrils of real AS graphs — the regional chains that
     make failover paths several hops longer than the failed primary,
     which in turn drives the multi-round path exploration behind
     T_long transients. *)
  let pick_provider ~upto ~excluded =
    let uniform () =
      let rec draw tries =
        if tries = 0 then None
        else
          let u = Dessim.Rng.int rng upto in
          if List.mem u excluded then draw (tries - 1) else Some u
      in
      draw 16
    in
    if Dessim.Rng.float rng 1.0 < p.uniform_attach_fraction then
      match uniform () with
      | Some u -> Some u
      | None -> preferential_pick rng degrees ~upto ~excluded
    else preferential_pick rng degrees ~upto ~excluded
  in
  for v = 3 to n - 1 do
    let first =
      match pick_provider ~upto:v ~excluded:[] with
      | Some u -> u
      | None -> assert false (* seed triangle guarantees a candidate *)
    in
    add_edge v first;
    if Dessim.Rng.float rng 1.0 < p.dual_home_fraction then
      match pick_provider ~upto:v ~excluded:[ first; v ] with
      | Some second -> add_edge v second
      | None -> ()
  done;
  (* extra peering edges meshed among the highest-degree (core) nodes *)
  let core_size =
    Stdlib.max 3 (int_of_float (Float.round (p.core_fraction *. float_of_int n)))
  in
  let by_degree = Array.init n Fun.id in
  Array.sort (fun a b -> compare degrees.(b) degrees.(a)) by_degree;
  let core = Array.sub by_degree 0 (Stdlib.min core_size n) in
  let has u v =
    List.exists
      (fun (a, b) -> (a = u && b = v) || (a = v && b = u))
      !edges
  in
  let added = ref 0 and attempts = ref 0 in
  let max_attempts = 50 * (p.core_extra_edges + 1) in
  while !added < p.core_extra_edges && !attempts < max_attempts do
    incr attempts;
    let i = Dessim.Rng.int rng (Array.length core) in
    let j = Dessim.Rng.int rng (Array.length core) in
    let u = core.(i) and v = core.(j) in
    if u <> v && not (has u v) then begin
      add_edge u v;
      incr added
    end
  done;
  let g = Graph.create ~n ~edges:!edges in
  assert (Graph.is_connected g);
  g

let stub_nodes = Graph.min_degree_nodes

let degree_stats g =
  let ds =
    Array.of_list
      (List.map (fun v -> float_of_int (Graph.degree g v)) (Graph.nodes g))
  in
  Stats.Descriptive.summarize ds
