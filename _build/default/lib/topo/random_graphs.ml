(* Connect a possibly-disconnected simple graph by adding one edge
   between successive components (component representative to
   representative), preserving all existing edges. *)
let connect ~n edges =
  let g = Graph.create ~n ~edges in
  if Graph.is_connected g then g
  else begin
    let component = Array.make n (-1) in
    let mark v c =
      let q = Queue.create () in
      Queue.add v q;
      component.(v) <- c;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun w ->
            if component.(w) < 0 then begin
              component.(w) <- c;
              Queue.add w q
            end)
          (Graph.neighbors g u)
      done
    in
    let reps = ref [] in
    for v = 0 to n - 1 do
      if component.(v) < 0 then begin
        mark v v;
        reps := v :: !reps
      end
    done;
    let rec bridges acc = function
      | a :: (b :: _ as rest) -> bridges ((a, b) :: acc) rest
      | [ _ ] | [] -> acc
    in
    Graph.create ~n ~edges:(bridges edges !reps)
  end

let waxman ?(alpha = 0.4) ?(beta = 0.2) ~seed n =
  if n < 2 then invalid_arg "Random_graphs.waxman: n >= 2 required";
  if alpha <= 0. || alpha > 1. then
    invalid_arg "Random_graphs.waxman: alpha outside (0, 1]";
  if beta <= 0. || beta > 1. then
    invalid_arg "Random_graphs.waxman: beta outside (0, 1]";
  let rng = Dessim.Rng.create ~seed in
  let xs = Array.init n (fun _ -> Dessim.Rng.float rng 1.) in
  let ys = Array.init n (fun _ -> Dessim.Rng.float rng 1.) in
  let diag = Float.sqrt 2. in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
      let d = Float.sqrt ((dx *. dx) +. (dy *. dy)) in
      let p = alpha *. Float.exp (-.d /. (beta *. diag)) in
      if Dessim.Rng.float rng 1. < p then edges := (u, v) :: !edges
    done
  done;
  connect ~n !edges

let glp ?(m = 1) ?(beta = 0.5) ~seed n =
  if n < 2 then invalid_arg "Random_graphs.glp: n >= 2 required";
  if m < 1 then invalid_arg "Random_graphs.glp: m >= 1 required";
  if beta >= 1. then invalid_arg "Random_graphs.glp: beta < 1 required";
  let rng = Dessim.Rng.create ~seed in
  let degrees = Array.make n 0. in
  let edges = ref [ (0, 1) ] in
  degrees.(0) <- 1.;
  degrees.(1) <- 1.;
  let weight v = degrees.(v) -. beta in
  (* draw an existing node (index < upto) by linear preference,
     excluding [excluded] *)
  let draw ~upto ~excluded =
    let total = ref 0. in
    for v = 0 to upto - 1 do
      if not (List.mem v excluded) then total := !total +. weight v
    done;
    if !total <= 0. then None
    else begin
      let target = Dessim.Rng.float rng !total in
      let acc = ref 0. and found = ref None in
      for v = 0 to upto - 1 do
        if !found = None && not (List.mem v excluded) then begin
          acc := !acc +. weight v;
          if !acc > target then found := Some v
        end
      done;
      !found
    end
  in
  for v = 2 to n - 1 do
    let chosen = ref [] in
    for _ = 1 to Stdlib.min m v do
      match draw ~upto:v ~excluded:!chosen with
      | Some u ->
          chosen := u :: !chosen;
          edges := (u, v) :: !edges;
          degrees.(u) <- degrees.(u) +. 1.;
          degrees.(v) <- degrees.(v) +. 1.
      | None -> ()
    done
  done;
  connect ~n !edges
