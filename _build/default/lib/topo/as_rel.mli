(** CAIDA-style AS relationship files.

    The serial-1 format is one relationship per line:

    {v
    # comments start with '#'
    <provider-as>|<customer-as>|-1
    <peer-as>|<peer-as>|0
    v}

    Loading remaps the (arbitrary) AS numbers to contiguous node ids
    [0..n-1] and returns, along with the graph, the relationship
    oracle in the form {!Bgp.Policy.gao_rexford} expects — so a real
    AS-relationship snapshot can drive policy-routing experiments
    directly. *)

type t

val parse : string -> t
(** @raise Invalid_argument on malformed lines, self-relationships, or
    duplicate AS pairs. *)

val graph : t -> Graph.t

val node_of_asn : t -> int -> int option
(** Node id of an AS number. *)

val asn_of_node : t -> int -> int
(** Original AS number of a node id.
    @raise Invalid_argument on an out-of-range node. *)

val relationship : t -> int -> int -> [ `Customer | `Peer | `Provider ]
(** [relationship t a b] is [b]'s role from node [a]'s point of view
    (node ids, not AS numbers).
    @raise Invalid_argument if [a] and [b] are not adjacent. *)

val to_string : t -> string
(** Serializes back to the serial-1 format (with original AS numbers),
    one line per edge, sorted. *)
