(** Structural metrics of topologies.

    Used to document the Internet-generator substitution (DESIGN.md §4,
    EXPERIMENTS.md "Substitution fidelity"): the studied BGP behaviour
    depends on path lengths through the graph and on the degree
    structure, so the generator is characterized by exactly those. *)

type t = {
  n : int;
  m : int;
  diameter : int;  (** longest shortest path; 0 for a single node *)
  mean_path_length : float;
      (** average hop distance over ordered reachable pairs; [0.] when
          no such pair exists *)
  mean_degree : float;
  max_degree : int;
  min_degree : int;
  degree_histogram : (int * int) list;
      (** (degree, node count), ascending, empty degrees omitted *)
  clustering : float;
      (** mean local clustering coefficient (nodes of degree < 2
          contribute 0) *)
}

val compute : Graph.t -> t
(** Exhaustive BFS from every node: O(n·(n+m)).  Intended for the
    experiment-scale graphs of this study.
    @raise Invalid_argument on the empty graph or a disconnected one
    (the simulator requires connected topologies anyway). *)

val pp : Format.formatter -> t -> unit
