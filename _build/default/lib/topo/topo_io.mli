(** Serialization of topologies.

    The edge-list format is one [u v] pair per line, preceded by a
    header line [n <nodes>].  Lines starting with [#] and blank lines
    are ignored.  This lets users run the harness on their own AS
    graphs (e.g. graphs extracted from Route Views tables, as the paper
    did). *)

val to_edge_list : Graph.t -> string

val of_edge_list : string -> Graph.t
(** @raise Invalid_argument on malformed input (missing header,
    unparsable line, or edge constraints violated by {!Graph.create}). *)

val to_dot : ?name:string -> Graph.t -> string
(** Graphviz rendering, for inspecting generated topologies. *)
