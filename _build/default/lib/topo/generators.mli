(** Deterministic topology generators.

    These are the synthetic shapes used throughout the paper's
    evaluation and in the BGP convergence literature it builds on
    (Labovitz et al., Griffin & Premore, Bremler-Barr et al.):

    - {!clique}: the full mesh used for [T_down] experiments (Fig. 3a);
    - {!b_clique}: the "backup clique" of the paper's Fig. 3b — a size-n
      clique core with a size-n chain giving the destination a long
      backup path — used for [T_long] experiments;
    - the rest are standard shapes used by the test suite and examples.

    All generators raise [Invalid_argument] on sizes that cannot form
    the shape. *)

val clique : int -> Graph.t
(** Full mesh on [n >= 1] nodes. *)

val chain : int -> Graph.t
(** Path [0 - 1 - ... - n-1], [n >= 1]. *)

val ring : int -> Graph.t
(** Cycle on [n >= 3] nodes. *)

val star : int -> Graph.t
(** Node [0] is the hub; [n >= 2]. *)

val b_clique : int -> Graph.t
(** [b_clique n] has [2n] nodes ([n >= 2]): nodes [0 .. n-1] form a
    chain, nodes [n .. 2n-1] form a clique, node [0] connects to node
    [n], and node [n-1] connects to node [2n-1].  The destination AS of
    the paper's [T_long] scenario is node [0]; failing link [(0, n)]
    forces traffic onto the chain. *)

val balanced_tree : depth:int -> fanout:int -> Graph.t
(** Rooted at node [0]; [depth >= 0], [fanout >= 1]. *)

val grid : rows:int -> cols:int -> Graph.t
(** [rows * cols] nodes in row-major order; [rows, cols >= 1]. *)

val barbell : int -> Graph.t
(** Two [n]-cliques ([n >= 2]) joined by a single edge between node
    [n-1] and node [n]; [2n] nodes total. *)
